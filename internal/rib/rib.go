// Package rib models an announced-prefix table (a BGP RIB reduced to its
// prefixes) and derives the two prefix universes the TASS paper compares:
//
//   - the l-prefix view: only less-specific (maximal) announced prefixes,
//   - the m-prefix view: the announced table deaggregated around its
//     more-specifics into a minimal disjoint partition (Figure 2).
//
// Both views are Partitions: sorted, pairwise-disjoint prefix sets that
// support O(log n) point location and O(n+m) bulk host counting, the two
// operations the selection algorithm and the evaluation harness live on.
package rib

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
	"github.com/tass-scan/tass/internal/trie"
)

// Entry is one announced prefix with its origin annotation.
type Entry struct {
	Prefix netaddr.Prefix
	Origin pfx2as.Origin
}

// Table is an announced-prefix table. Entries are kept sorted by
// (address, length); duplicates are collapsed (last origin wins).
type Table struct {
	entries []Entry

	// Lazily derived views.
	less  *Partition
	deagg *Partition
}

// New builds a Table from entries. The input is copied, sorted and
// de-duplicated.
func New(entries []Entry) *Table {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].Prefix.Compare(es[j].Prefix) < 0 })
	out := es[:0]
	for _, e := range es {
		if n := len(out); n > 0 && out[n-1].Prefix == e.Prefix {
			out[n-1].Origin = e.Origin
			continue
		}
		out = append(out, e)
	}
	return &Table{entries: out}
}

// FromRecords builds a Table from pfx2as records.
func FromRecords(records []pfx2as.Record) *Table {
	es := make([]Entry, len(records))
	for i, r := range records {
		es[i] = Entry{Prefix: r.Prefix, Origin: r.Origin}
	}
	return New(es)
}

// Records converts the table back into pfx2as records.
func (t *Table) Records() []pfx2as.Record {
	out := make([]pfx2as.Record, len(t.entries))
	for i, e := range t.entries {
		out[i] = pfx2as.Record{Prefix: e.Prefix, Origin: e.Origin}
	}
	return out
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns the sorted announced entries. The slice is shared; do
// not modify it.
func (t *Table) Entries() []Entry { return t.entries }

// Prefixes returns the announced prefixes in sorted order.
func (t *Table) Prefixes() []netaddr.Prefix {
	out := make([]netaddr.Prefix, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.Prefix
	}
	return out
}

// LessSpecifics returns the l-prefix view: the maximal announced prefixes,
// with every prefix covered by another announcement dropped.
func (t *Table) LessSpecifics() Partition {
	if t.less == nil {
		p := mustPartition(trie.LessSpecificOnly(t.Prefixes()))
		t.less = &p
	}
	return *t.less
}

// Deaggregated returns the m-prefix view: the minimal disjoint partition
// produced by decomposing every l-prefix around its announced
// more-specifics (paper Figure 2).
func (t *Table) Deaggregated() Partition {
	if t.deagg == nil {
		p := mustPartition(trie.Deaggregate(t.Prefixes()))
		t.deagg = &p
	}
	return *t.deagg
}

// AnnouncedSpace returns the number of addresses covered by the table
// (the union of all announcements).
func (t *Table) AnnouncedSpace() uint64 {
	return t.LessSpecifics().AddressCount()
}

// OriginsOf maps every prefix of a partition (a selection or universe
// derived from this table) to its origin AS: the primary origin of the
// most specific announcement containing the prefix, or 0 when none does
// (or the announcement carries no origin). The result feeds the scan
// engine's per-AS politeness layer (scan.Politeness.Origins), which
// paces, budgets and accounts probes per origin network.
func (t *Table) OriginsOf(p Partition) []uint32 {
	tr := trie.New[uint32]()
	for _, e := range t.entries {
		as, _ := e.Origin.Primary() // 0 when unknown, the "no origin" bucket
		tr.Insert(e.Prefix, as)
	}
	out := make([]uint32, p.Len())
	for i := 0; i < p.Len(); i++ {
		// Partition prefixes never straddle announcements (both views are
		// deaggregated around more-specifics), so the most specific
		// announced cover of the whole prefix is its origin.
		if _, as, ok := tr.LookupPrefix(p.Prefix(i)); ok {
			out[i] = as
		}
	}
	return out
}

// Stats summarizes the aggregation structure of a table, mirroring the
// numbers the paper reports for the CAIDA dataset of 2015-09-07
// (595,644 prefixes, 54% more-specifics covering 34.4% of the space).
type Stats struct {
	Prefixes       int     // total announced prefixes
	MoreSpecifics  int     // prefixes covered by another announcement
	MoreShare      float64 // MoreSpecifics / Prefixes
	Space          uint64  // announced address space (union)
	MoreSpace      uint64  // space covered by more-specifics (union)
	MoreSpaceShare float64 // MoreSpace / Space
}

// Stats computes aggregation statistics for the table.
func (t *Table) Stats() Stats {
	tr := trie.New[struct{}]()
	for _, e := range t.entries {
		tr.Insert(e.Prefix, struct{}{})
	}
	var more []netaddr.Prefix
	for _, e := range t.entries {
		// A prefix is a more-specific iff some announcement strictly
		// contains it, i.e. iff its parent has an announced cover.
		if par, ok := e.Prefix.Parent(); ok {
			if _, _, found := tr.LookupPrefix(par); found {
				more = append(more, e.Prefix)
			}
		}
	}
	s := Stats{
		Prefixes:      len(t.entries),
		MoreSpecifics: len(more),
		Space:         t.AnnouncedSpace(),
	}
	if s.Prefixes > 0 {
		s.MoreShare = float64(s.MoreSpecifics) / float64(s.Prefixes)
	}
	moreUnion := mustPartition(trie.LessSpecificOnly(more))
	s.MoreSpace = moreUnion.AddressCount()
	if s.Space > 0 {
		s.MoreSpaceShare = float64(s.MoreSpace) / float64(s.Space)
	}
	return s
}

// PartOf is a sorted, pairwise-disjoint set of prefixes of family A:
// one of the paper's two scanning universes. The zero value is an empty
// partition.
type PartOf[A netaddr.Key[A]] struct {
	prefixes []netaddr.Pfx[A]
	firsts   []A // parallel cache of prefix network addresses
	lasts    []A // parallel cache of prefix broadcast addresses
	space    uint64
}

// Partition is the IPv4 instantiation of PartOf.
type Partition = PartOf[netaddr.Addr]

// ErrNotPartition is returned by NewPartition when prefixes overlap.
var ErrNotPartition = errors.New("rib: prefixes overlap")

// NewPartition validates that ps is pairwise disjoint and builds a
// Partition. The input is copied and sorted. It works for any address
// family despite the historical name.
func NewPartition[A netaddr.Key[A]](ps []netaddr.Pfx[A]) (PartOf[A], error) {
	cp := make([]netaddr.Pfx[A], len(ps))
	copy(cp, ps)
	netaddr.SortPfx(cp)
	part := newPartitionSorted(cp)
	// Prefix ranges either nest or are disjoint, and sorting orders them
	// by first address — so any overlap shows up as an adjacent pair
	// whose ranges touch. Checking the cached range bounds avoids a
	// per-pair Overlaps call.
	for i := 1; i < len(cp); i++ {
		if part.lasts[i-1].Compare(part.firsts[i]) >= 0 {
			return PartOf[A]{}, fmt.Errorf("%w: %v and %v", ErrNotPartition, cp[i-1], cp[i])
		}
	}
	return part, nil
}

func mustPartition[A netaddr.Key[A]](sorted []netaddr.Pfx[A]) PartOf[A] {
	return newPartitionSorted(sorted)
}

// addSat adds address counts saturating at the maximum uint64: IPv6
// prefixes shorter than /64 already saturate NumAddresses, and their
// sums must not wrap back into plausible-looking small numbers.
func addSat(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

func newPartitionSorted[A netaddr.Key[A]](sorted []netaddr.Pfx[A]) PartOf[A] {
	if p4, ok := any(sorted).([]netaddr.Prefix); ok {
		return any(newPartitionSorted32(p4)).(PartOf[A])
	}
	firsts := make([]A, len(sorted))
	lasts := make([]A, len(sorted))
	var space uint64
	for i, p := range sorted {
		firsts[i] = p.First()
		lasts[i] = p.Last()
		space = addSat(space, p.NumAddresses())
	}
	return PartOf[A]{prefixes: sorted, firsts: firsts, lasts: lasts, space: space}
}

// newPartitionSorted32 is the concrete IPv4 partition build: selection
// construction rebuilds a partition per reseed, so the per-prefix range
// bounds are derived with direct uint32 arithmetic on the canonical
// network address instead of generic Last/NumAddresses calls.
func newPartitionSorted32(sorted []netaddr.Prefix) Partition {
	firsts := make([]netaddr.Addr, len(sorted))
	lasts := make([]netaddr.Addr, len(sorted))
	var space uint64
	for i, p := range sorted {
		size := uint64(1) << uint(32-p.Bits())
		f := p.Addr()
		firsts[i] = f
		lasts[i] = f + netaddr.Addr(size-1)
		space = addSat(space, size)
	}
	return Partition{prefixes: sorted, firsts: firsts, lasts: lasts, space: space}
}

// Len returns the number of prefixes in the partition.
func (p PartOf[A]) Len() int { return len(p.prefixes) }

// Prefix returns the i-th prefix in sorted order.
func (p PartOf[A]) Prefix(i int) netaddr.Pfx[A] { return p.prefixes[i] }

// Prefixes returns the sorted prefixes. The slice is shared; do not
// modify it.
func (p PartOf[A]) Prefixes() []netaddr.Pfx[A] { return p.prefixes }

// FirstAt returns the lowest address of the i-th prefix. It reads a
// cache built at partition construction, so unlike Prefix(i).First()
// it costs a slice load — counting walks call it once per address.
func (p PartOf[A]) FirstAt(i int) A { return p.firsts[i] }

// LastAt returns the highest address of the i-th prefix, from the same
// construction-time cache as FirstAt.
func (p PartOf[A]) LastAt(i int) A { return p.lasts[i] }

// AddressCount returns the total number of addresses covered,
// saturating at the maximum uint64 (IPv6 partitions routinely exceed
// it; use SpaceBits accounting there instead).
func (p PartOf[A]) AddressCount() uint64 { return p.space }

// Find locates the partition prefix containing a and returns its index.
func (p PartOf[A]) Find(a A) (int, bool) {
	// Rightmost prefix whose first address is <= a.
	i := sort.Search(len(p.firsts), func(i int) bool { return p.firsts[i].Compare(a) > 0 })
	if i == 0 {
		return 0, false
	}
	i--
	if p.prefixes[i].Contains(a) {
		return i, true
	}
	return 0, false
}

// CountAddrs counts, for each partition prefix, how many of the given
// addresses it contains. addrs must be sorted ascending. The returned
// slice is indexed like Prefix(i); the second result is the number of
// addresses that fell outside the partition.
func (p PartOf[A]) CountAddrs(addrs []A) (counts []int, outside int) {
	if p4, ok := any(p).(Partition); ok {
		// Concrete IPv4 walk: direct uint32 compares in the inner loop.
		// This merge visits every snapshot address, so the dictionary
		// calls of the generic path would be the dominant cost.
		return countAddrs32(p4, any(addrs).([]netaddr.Addr))
	}
	counts = make([]int, len(p.prefixes))
	i := 0 // partition cursor
	for _, a := range addrs {
		for i < len(p.lasts) && p.lasts[i].Compare(a) < 0 {
			i++
		}
		if i == len(p.firsts) || a.Compare(p.firsts[i]) < 0 {
			outside++
			continue
		}
		counts[i]++
	}
	return counts, outside
}

func countAddrs32(p Partition, addrs []netaddr.Addr) (counts []int, outside int) {
	counts = make([]int, len(p.prefixes))
	i := 0
	for _, a := range addrs {
		for i < len(p.lasts) && p.lasts[i] < a {
			i++
		}
		if i == len(p.firsts) || a < p.firsts[i] {
			outside++
			continue
		}
		counts[i]++
	}
	return counts, outside
}

// CountAddrsSet counts, for each partition prefix, how many addresses
// of the block-indexed set it contains, using one ascending range count
// per prefix. The counter gallops its block hint forward from prefix to
// prefix and decodes each boundary block at most once, so a K-prefix
// pass costs O(K log B + touched blocks) — sub-linear in the set size
// for sparse selections, where the O(N+K) merge walk re-touches every
// address. Results are identical to CountAddrs on the same addresses.
func (p PartOf[A]) CountAddrsSet(set *addrset.SetOf[A]) (counts []int, outside int) {
	counts = make([]int, len(p.prefixes))
	ctr := set.Counter()
	inside := 0
	for i := range p.prefixes {
		c := ctr.Count(p.firsts[i], p.lasts[i])
		counts[i] = c
		inside += c
	}
	return counts, set.Len() - inside
}

// Subset returns a new Partition containing the prefixes at the given
// indexes (e.g. a TASS selection). Indexes may be in any order.
func (p PartOf[A]) Subset(indexes []int) PartOf[A] {
	ps := make([]netaddr.Pfx[A], 0, len(indexes))
	for _, i := range indexes {
		ps = append(ps, p.prefixes[i])
	}
	netaddr.SortPfx(ps)
	return newPartitionSorted(ps)
}

// SubsetAscending returns the Partition of the prefixes at the given
// strictly ascending indexes. A partition's prefixes are sorted and
// pairwise disjoint, so any subset taken in index order already is too
// — no re-sort, no overlap check. It is the selection-construction hot
// path: an incremental reseed builds its scan plan with one pass here
// instead of a comparison sort over thousands of chosen prefixes.
func (p PartOf[A]) SubsetAscending(indexes []int32) PartOf[A] {
	if p4, ok := any(p).(Partition); ok {
		return any(subsetAscending32(p4, indexes)).(PartOf[A])
	}
	ps := make([]netaddr.Pfx[A], 0, len(indexes))
	firsts := make([]A, 0, len(indexes))
	lasts := make([]A, 0, len(indexes))
	var space uint64
	for _, i := range indexes {
		ps = append(ps, p.prefixes[i])
		firsts = append(firsts, p.firsts[i])
		lasts = append(lasts, p.lasts[i])
		space = addSat(space, p.prefixes[i].NumAddresses())
	}
	return PartOf[A]{prefixes: ps, firsts: firsts, lasts: lasts, space: space}
}

func subsetAscending32(p Partition, indexes []int32) Partition {
	n := len(indexes)
	ps := make([]netaddr.Prefix, n)
	firsts := make([]netaddr.Addr, n)
	lasts := make([]netaddr.Addr, n)
	var space uint64
	for k, i := range indexes {
		ps[k] = p.prefixes[i]
		f, l := p.firsts[i], p.lasts[i]
		firsts[k] = f
		lasts[k] = l
		space = addSat(space, uint64(l-f)+1)
	}
	return Partition{prefixes: ps, firsts: firsts, lasts: lasts, space: space}
}
