// Package pfx2as reads and writes the CAIDA Routeviews "Prefix-to-AS"
// (pfx2as) text format that the TASS paper uses as its topology source.
//
// Each line maps one announced prefix to its origin AS(es):
//
//	1.0.0.0<TAB>24<TAB>13335
//	1.0.4.0<TAB>22<TAB>38803_56203      (MOAS: multiple origins)
//	223.255.254.0<TAB>24<TAB>55415,38266 (AS set)
//
// Following CAIDA's convention, '_' separates alternative origins observed
// for the same prefix (MOAS) and ',' separates members of an AS set.
// Comment lines starting with '#' and blank lines are ignored.
package pfx2as

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/tass-scan/tass/internal/netaddr"
)

// Origin is the origin-AS annotation of one announced prefix. Groups holds
// the '_'-separated MOAS alternatives in file order; each group is a
// ','-separated AS set (almost always a single element).
type Origin struct {
	Groups [][]uint32
}

// SingleOrigin is the common case of exactly one origin AS.
func SingleOrigin(asn uint32) Origin {
	return Origin{Groups: [][]uint32{{asn}}}
}

// Primary returns the first AS of the first group, the conventional
// "the origin" used when one AS number is needed. ok is false for an
// empty Origin.
func (o Origin) Primary() (uint32, bool) {
	if len(o.Groups) == 0 || len(o.Groups[0]) == 0 {
		return 0, false
	}
	return o.Groups[0][0], true
}

// MOAS reports whether the prefix was observed with multiple alternative
// origin ASes.
func (o Origin) MOAS() bool { return len(o.Groups) > 1 }

// String renders the origin in CAIDA notation ('_' between groups, ','
// within a set).
func (o Origin) String() string {
	var sb strings.Builder
	for i, g := range o.Groups {
		if i > 0 {
			sb.WriteByte('_')
		}
		for j, asn := range g {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatUint(uint64(asn), 10))
		}
	}
	return sb.String()
}

// ParseOrigin parses CAIDA origin notation such as "13335",
// "38803_56203" or "55415,38266".
func ParseOrigin(s string) (Origin, error) {
	if s == "" {
		return Origin{}, errors.New("pfx2as: empty origin")
	}
	var o Origin
	for _, part := range strings.Split(s, "_") {
		var group []uint32
		for _, as := range strings.Split(part, ",") {
			v, err := strconv.ParseUint(as, 10, 32)
			if err != nil {
				return Origin{}, fmt.Errorf("pfx2as: bad AS number %q: %w", as, err)
			}
			group = append(group, uint32(v))
		}
		o.Groups = append(o.Groups, group)
	}
	return o, nil
}

// Record is one pfx2as line: an announced prefix and its origin.
type Record struct {
	Prefix netaddr.Prefix
	Origin Origin
}

// Reader parses pfx2as data line by line.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{s: s}
}

// Read returns the next record, or io.EOF after the last one.
func (r *Reader) Read() (Record, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return Record{}, fmt.Errorf("pfx2as: line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.s.Err(); err != nil {
		return Record{}, fmt.Errorf("pfx2as: %w", err)
	}
	return Record{}, io.EOF
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func parseLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Record{}, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	addr, err := netaddr.ParseAddr(fields[0])
	if err != nil {
		return Record{}, err
	}
	bits, err := strconv.Atoi(fields[1])
	if err != nil || bits < 0 || bits > 32 {
		return Record{}, fmt.Errorf("bad prefix length %q", fields[1])
	}
	p, err := netaddr.PrefixFrom(addr, bits)
	if err != nil {
		return Record{}, err
	}
	if p.Addr() != addr {
		return Record{}, fmt.Errorf("host bits set in %s/%d", addr, bits)
	}
	origin, err := ParseOrigin(fields[2])
	if err != nil {
		return Record{}, err
	}
	return Record{Prefix: p, Origin: origin}, nil
}

// ParseAll reads a complete pfx2as document from r.
func ParseAll(r io.Reader) ([]Record, error) {
	return NewReader(r).ReadAll()
}

// Write emits records in CAIDA pfx2as notation.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\n",
			rec.Prefix.Addr(), rec.Prefix.Bits(), rec.Origin); err != nil {
			return fmt.Errorf("pfx2as: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("pfx2as: %w", err)
	}
	return nil
}
