package pfx2as

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"github.com/tass-scan/tass/internal/netaddr"
)

const sample = `# CAIDA-style comment
1.0.0.0	24	13335

1.0.4.0	22	38803_56203
223.255.254.0	24	55415,38266
100.0.0.0	8	3356
`

func TestReadSample(t *testing.T) {
	recs, err := ParseAll(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Prefix.String() != "1.0.0.0/24" {
		t.Errorf("rec0 prefix %v", recs[0].Prefix)
	}
	if asn, ok := recs[0].Origin.Primary(); !ok || asn != 13335 {
		t.Errorf("rec0 origin %v", recs[0].Origin)
	}
	if !recs[1].Origin.MOAS() {
		t.Error("rec1 should be MOAS")
	}
	if got := recs[1].Origin.String(); got != "38803_56203" {
		t.Errorf("rec1 origin string %q", got)
	}
	if got := recs[2].Origin.String(); got != "55415,38266" {
		t.Errorf("rec2 origin string %q", got)
	}
	if recs[2].Origin.MOAS() {
		t.Error("an AS set is not MOAS")
	}
	if recs[3].Prefix.Bits() != 8 {
		t.Errorf("rec3 bits %d", recs[3].Prefix.Bits())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1.0.0.0\t24",              // missing origin
		"1.0.0.0\t24\t13335\tmore", // extra field
		"1.0.0.0\t33\t13335",       // bad length
		"1.0.0.1\t24\t13335",       // host bits set
		"1.0.0.x\t24\t13335",       // bad addr
		"1.0.0.0\t24\tAS13335",     // bad origin
		"1.0.0.0\t24\t",            // empty origin field collapses to 2 fields
		"1.0.0.0\t24\t1_x",         // bad MOAS member
	}
	for _, c := range cases {
		if _, err := ParseAll(strings.NewReader(c)); err == nil {
			t.Errorf("ParseAll(%q) succeeded, want error", c)
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only comments\n\n"))
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []Record
	for i := 0; i < 500; i++ {
		bits := 8 + rng.Intn(17)
		p := netaddr.MustPrefixFrom(netaddr.Addr(rng.Uint32()), bits)
		var o Origin
		switch rng.Intn(3) {
		case 0:
			o = SingleOrigin(uint32(rng.Intn(1 << 17)))
		case 1:
			o = Origin{Groups: [][]uint32{{uint32(rng.Intn(65000))}, {uint32(rng.Intn(65000))}}}
		default:
			o = Origin{Groups: [][]uint32{{uint32(rng.Intn(65000)), uint32(rng.Intn(65000))}}}
		}
		recs = append(recs, Record{Prefix: p, Origin: o})
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip count %d, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Prefix != recs[i].Prefix {
			t.Fatalf("rec %d prefix %v != %v", i, back[i].Prefix, recs[i].Prefix)
		}
		if back[i].Origin.String() != recs[i].Origin.String() {
			t.Fatalf("rec %d origin %v != %v", i, back[i].Origin, recs[i].Origin)
		}
	}
}

func TestOriginPrimaryEmpty(t *testing.T) {
	if _, ok := (Origin{}).Primary(); ok {
		t.Error("empty origin should have no primary")
	}
}

func TestParseOrigin(t *testing.T) {
	o, err := ParseOrigin("701_1239,3356")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Groups) != 2 || len(o.Groups[1]) != 2 {
		t.Fatalf("groups %v", o.Groups)
	}
	if o.String() != "701_1239,3356" {
		t.Errorf("String = %q", o.String())
	}
	if _, err := ParseOrigin(""); err == nil {
		t.Error("empty origin must fail")
	}
	if _, err := ParseOrigin("4294967296"); err == nil {
		t.Error("AS > 32 bits must fail")
	}
}
