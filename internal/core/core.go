// Package core implements the paper's contribution: the Topology Aware
// Scanning Strategy (TASS) prefix-selection algorithm.
//
// Given one full scan (the seed) and a prefix universe (either the
// l-prefix or the deaggregated m-prefix partition of the announced table),
// TASS:
//
//  1. counts responsive addresses c_i per prefix i (Σc_i = N),
//  2. computes density ρ_i = c_i / 2^(W-len_i) and relative host
//     coverage φ_i = c_i / N,
//  3. ranks prefixes by descending density,
//  4. selects the smallest k with Σ_{i≤k} φ_i > φ,
//  5. hands prefixes 1..k to the periodic scanner until the next reseed.
//
// Steps 1–4 live here; step 5 is the scan scheduler in internal/scan and
// the public tass package. The engine is generic over the address
// family (W = 32 or 128): the IPv4 instantiations keep their packed
// integer ranking sort, IPv6 rankings use the comparator path, and both
// share every line of selection logic — which is exactly the paper's
// future-work direction, where brute-forcing the space is impossible
// and prefix selection is the only viable scan scoping.
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// StatOf describes one responsive prefix of the seed scan.
type StatOf[A netaddr.Key[A]] struct {
	Prefix netaddr.Pfx[A]
	// Hosts is c_i: responsive addresses inside the prefix.
	Hosts int
	// Density is ρ_i = Hosts / 2^(W-len).
	Density float64
	// Coverage is φ_i = Hosts / N.
	Coverage float64
}

// PrefixStat is the IPv4 instantiation of StatOf.
type PrefixStat = StatOf[netaddr.Addr]

// density returns ρ = c / 2^(W-len) exactly: scaling by a power of two
// is lossless in IEEE 754, so Ldexp(c, len-W) is bit-identical to the
// division float64(c)/float64(2^(W-len)) the IPv4 path historically
// used — and it cannot overflow the denominator for W = 128.
func density[A netaddr.Key[A]](c int, p netaddr.Pfx[A]) float64 {
	var z A
	return math.Ldexp(float64(c), p.Bits()-z.Width())
}

// Rank computes the responsive-prefix statistics of a seed snapshot over
// a partition, sorted by descending density (steps 1–3). Ties break by
// host count (more first) and then prefix order, keeping the ranking
// deterministic. Prefixes with zero hosts are omitted (ρ > 0, as in the
// paper's Figure 4).
func Rank[A netaddr.Key[A]](seed *census.SnapshotOf[A], part rib.PartOf[A]) []StatOf[A] {
	return RankWorkers(seed, part, 1)
}

// RankWorkers is Rank with the per-prefix counting walk sharded over up
// to workers goroutines (0 means GOMAXPROCS). The ranking is identical
// to Rank at any worker count.
func RankWorkers[A netaddr.Key[A]](seed *census.SnapshotOf[A], part rib.PartOf[A], workers int) []StatOf[A] {
	return RankCached(seed, part, workers, nil)
}

// RankCached is RankWorkers with the per-prefix counts memoized in
// cache by (seed, part) identity: the first ranking of a pair pays for
// the counting walk, every later one reuses the counts. A nil cache
// computes every call. The ranking is byte-identical with or without a
// cache at any worker count.
//
// For IPv4 the sort is a key-packed slices.Sort on one uint64 per
// responsive prefix rather than a sort.Slice comparator: density
// ρ = c/2^(32-len) compares exactly as the integer v = c<<len (both are
// v/2^32), and within equal v a larger host count means a shorter
// prefix, so (density desc, hosts desc, prefix asc) packs losslessly
// into (^v, len, rank-index) — no interface calls, no reflection swaps,
// no float comparisons on the ~100 K-entry paper-scale ranking. Wider
// families cannot pack v = c<<len into 33 bits and use the comparator
// sort, whose order is identical.
func RankCached[A netaddr.Key[A]](seed *census.SnapshotOf[A], part rib.PartOf[A], workers int, cache *census.CountCacheOf[A]) []StatOf[A] {
	counts, _ := cache.Counts(seed, part, workers)
	total := 0
	for _, c := range counts {
		total += c
	}
	stats := make([]StatOf[A], 0, len(counts)/2)
	keys := make([]uint64, 0, len(counts)/2)
	// The packed key spends 33 bits on v (≤ 2^32), 6 on the prefix
	// length and 25 on the rank index: only the 32-bit family fits.
	// Partitions too large for 25 bits (or counts exceeding the prefix
	// size, impossible for snapshot input but cheap to guard) fall back
	// to the comparator sort.
	var zero A
	packed := zero.Width() == 32 && part.Len() < 1<<25
	for i, c := range counts {
		if c == 0 {
			continue
		}
		p := part.Prefix(i)
		stats = append(stats, StatOf[A]{
			Prefix:   p,
			Hosts:    c,
			Density:  density(c, p),
			Coverage: float64(c) / float64(total),
		})
		if packed {
			l := uint(p.Bits())
			v := uint64(c) << l
			if v > 1<<32 {
				packed = false
				continue
			}
			keys = append(keys, packKey(v, l, len(stats)-1))
		}
	}
	if packed {
		slices.Sort(keys)
		out := make([]StatOf[A], len(stats))
		for j, k := range keys {
			out[j] = stats[keyIndex(k)]
		}
		return out
	}
	sort.Slice(stats, func(a, b int) bool {
		sa, sb := &stats[a], &stats[b]
		if sa.Density != sb.Density {
			return sa.Density > sb.Density
		}
		if sa.Hosts != sb.Hosts {
			return sa.Hosts > sb.Hosts
		}
		return sa.Prefix.Compare(sb.Prefix) < 0
	})
	return stats
}

// Options parameterizes Select.
type Options struct {
	// Phi is the target host coverage φ in (0, 1]. φ=1 selects every
	// responsive prefix; φ=0.95 trades 5 % of hosts for a much smaller
	// scan footprint.
	Phi float64

	// MinDensity, when positive, stops selection once the ranked density
	// falls below the threshold, even if φ has not been reached (the
	// paper's "omit prefixes with a low density" optimization, §3.4).
	MinDensity float64

	// MaxPrefixes, when positive, caps the number of selected prefixes
	// (the paper's "first 20 K prefixes" analysis).
	MaxPrefixes int
}

// SelectionOf is a TASS scan plan: the prefixes to probe each cycle.
type SelectionOf[A netaddr.Key[A]] struct {
	// Ranked lists every responsive prefix in density order; the first K
	// entries are selected.
	Ranked []StatOf[A]
	// K is the number of selected prefixes (step 4's smallest k).
	K int
	// SeedHosts is N, the responsive-address count of the seed scan
	// inside the partition.
	SeedHosts int
	// HostCoverage is the achieved Σφ_i over the selection.
	HostCoverage float64
	// Space is the address count of the selection: the per-cycle probe
	// cost of the plan. It saturates at the maximum uint64 for IPv6
	// selections wider than 2^64 addresses; use SpaceBits there.
	Space uint64
	// SpaceBits is log2(Space) computed in floating point without the
	// saturation: the probe cost as an exponent, the natural unit for
	// IPv6 plans (a /32 selection is SpaceBits 96).
	SpaceBits float64
	// SpaceShare is Space relative to the full partition. Exact for
	// IPv4; for IPv6 both sides saturate and the share is only a bound.
	SpaceShare float64

	part rib.PartOf[A] // selected prefixes as a partition
}

// Selection is the IPv4 instantiation of SelectionOf.
type Selection = SelectionOf[netaddr.Addr]

// validate rejects out-of-range option values.
func (o Options) validate() error {
	if o.Phi <= 0 || o.Phi > 1 {
		return fmt.Errorf("core: φ must be in (0,1], got %v", o.Phi)
	}
	return nil
}

// Select runs TASS prefix selection (steps 1–4) on a seed snapshot.
func Select[A netaddr.Key[A]](seed *census.SnapshotOf[A], universe rib.PartOf[A], opts Options) (*SelectionOf[A], error) {
	return SelectCached(seed, universe, opts, 1, nil)
}

// SelectCached is Select with the counting walk sharded over workers
// goroutines (0 means GOMAXPROCS) and the per-prefix counts memoized in
// cache (nil computes every call). The selection is identical to Select
// at any worker count, cached or not.
func SelectCached[A netaddr.Key[A]](seed *census.SnapshotOf[A], universe rib.PartOf[A], opts Options, workers int, cache *census.CountCacheOf[A]) (*SelectionOf[A], error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ranked := RankCached(seed, universe, workers, cache)
	// A lazy seed records block faults instead of panicking; refuse to
	// build a plan over counts that silently miss damaged blocks unless
	// the caller opted into degraded reads on the snapshot itself.
	if err := seed.StorageErr(); err != nil {
		return nil, fmt.Errorf("core: seed snapshot storage fault: %w", err)
	}
	return selectRanked(ranked, universe, opts)
}

// packKey packs one responsive prefix into the uint64 ranking key: the
// density integer v = hosts<<len inverted (so ascending key order is
// descending density), the prefix length (equal v with a longer prefix
// means fewer hosts, ranked later), and a 25-bit tiebreak index that
// must be monotone in partition order. Both the batch sort in
// RankCached and the incremental repair in Ranker sort these same keys,
// which is what makes the two paths byte-identical. IPv4 only: v and
// len do not fit for wider families.
func packKey(v uint64, bits uint, idx int) uint64 {
	return (^v&(1<<33-1))<<31 | uint64(bits)<<25 | uint64(idx)
}

// keyIndex recovers the tiebreak index of a packed ranking key.
func keyIndex(k uint64) int { return int(k & (1<<25 - 1)) }

// addSat adds address counts saturating at the maximum uint64.
func addSat(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// selectRanked runs selection steps 4–5 on a precomputed ranking. The
// ranked slice is shared read-only by the returned Selection. Callers
// have already validated opts.
func selectRanked[A netaddr.Key[A]](ranked []StatOf[A], universe rib.PartOf[A], opts Options) (*SelectionOf[A], error) {
	total := 0
	for i := range ranked {
		total += ranked[i].Hosts
	}
	return selectRankedTotal(ranked, total, universe, opts)
}

// selectionHead walks the top of the ranking — it stops at the
// smallest k reaching φ (or a MinDensity/MaxPrefixes cut), never
// touching the tail — and fills everything of the Selection except the
// derived partition, which callers build on their own fast path.
func selectionHead[A netaddr.Key[A]](ranked []StatOf[A], total int, universe rib.PartOf[A], opts Options) (*SelectionOf[A], error) {
	if total == 0 {
		return nil, fmt.Errorf("core: seed snapshot has no hosts inside the universe")
	}

	var zero A
	w := zero.Width()
	sel := &SelectionOf[A]{Ranked: ranked, SeedHosts: total}
	covered := 0
	spaceF := 0.0
	for i := range ranked {
		if opts.MaxPrefixes > 0 && i >= opts.MaxPrefixes {
			break
		}
		if opts.MinDensity > 0 && ranked[i].Density < opts.MinDensity {
			break
		}
		covered += ranked[i].Hosts
		sel.K = i + 1
		shift := w - ranked[i].Prefix.Bits()
		if shift >= 64 {
			sel.Space = ^uint64(0) // NumAddresses saturates here too
		} else {
			sel.Space = addSat(sel.Space, 1<<uint(shift))
		}
		// Power-of-two summands keep the float accumulation exact as
		// long as the running sum stays under 2^53 — always, for IPv4.
		// Constructing 2^shift by exponent-field arithmetic is exact for
		// shift in [0, 128] and equals math.Ldexp(1, shift) without the
		// per-prefix call.
		spaceF += math.Float64frombits(uint64(1023+shift) << 52)
		// Strict "> φ" per the paper's step 4; float64 comparison on the
		// integer ratio keeps this exact.
		if float64(covered) > opts.Phi*float64(total) ||
			(opts.Phi == 1 && covered == total) {
			break
		}
	}
	sel.HostCoverage = float64(covered) / float64(total)
	if spaceF > 0 {
		sel.SpaceBits = math.Log2(spaceF)
	}
	if s := universe.AddressCount(); s > 0 {
		sel.SpaceShare = float64(sel.Space) / float64(s)
	}
	return sel, nil
}

// selectRankedTotal is selectRanked for callers that already maintain
// the seed-host total: the O(ranked) re-sum is skipped.
func selectRankedTotal[A netaddr.Key[A]](ranked []StatOf[A], total int, universe rib.PartOf[A], opts Options) (*SelectionOf[A], error) {
	sel, err := selectionHead(ranked, total, universe, opts)
	if err != nil {
		return nil, err
	}
	ps := make([]netaddr.Pfx[A], sel.K)
	for i := 0; i < sel.K; i++ {
		ps[i] = ranked[i].Prefix
	}
	part, err := rib.NewPartition(ps)
	if err != nil {
		// Cannot happen: the universe is disjoint, so any subset is too.
		return nil, fmt.Errorf("core: internal: %w", err)
	}
	sel.part = part
	return sel, nil
}

// Partition returns the selected prefixes as a sorted disjoint partition,
// ready for scanning or evaluation.
func (s *SelectionOf[A]) Partition() rib.PartOf[A] { return s.part }

// Prefixes returns the selected prefixes in density-rank order.
func (s *SelectionOf[A]) Prefixes() []netaddr.Pfx[A] {
	out := make([]netaddr.Pfx[A], s.K)
	for i := 0; i < s.K; i++ {
		out[i] = s.Ranked[i].Prefix
	}
	return out
}

// Efficiency returns the expected probes-per-host ratio of the plan on
// the seed month: Space / covered hosts. Lower is better; a full scan's
// efficiency is partition space / N.
func (s *SelectionOf[A]) Efficiency() float64 {
	// Sum the selected hosts exactly: the float round-trip
	// HostCoverage*SeedHosts drifts for large N.
	covered := 0
	for i := 0; i < s.K; i++ {
		covered += s.Ranked[i].Hosts
	}
	if covered == 0 {
		return 0
	}
	return float64(s.Space) / float64(covered)
}

// Hitrate evaluates the plan against a later full-scan snapshot: the
// fraction of that month's hosts the selection still covers (the y-axis
// of the paper's Figure 6).
func (s *SelectionOf[A]) Hitrate(snap *census.SnapshotOf[A]) float64 {
	if snap.Hosts() == 0 {
		return 0
	}
	return float64(snap.CountIn(s.part)) / float64(snap.Hosts())
}

// CoverageCurve returns, for each rank r (1-based, downsampled to at most
// points entries), the cumulative host coverage and cumulative space
// share — the solid and dashed curves of the paper's Figure 4.
type CurvePoint struct {
	Rank       int
	Density    float64
	HostCov    float64
	SpaceShare float64
}

// CoverageCurve computes the ranked density/coverage curves of Figure 4.
// points bounds the number of samples (0 means every rank).
func CoverageCurve[A netaddr.Key[A]](ranked []StatOf[A], universeSpace uint64, points int) []CurvePoint {
	if len(ranked) == 0 {
		return nil
	}
	total := 0
	for i := range ranked {
		total += ranked[i].Hosts
	}
	step := 1
	if points > 0 && len(ranked) > points {
		step = (len(ranked) + points - 1) / points
	}
	var out []CurvePoint
	hosts := 0
	var space uint64
	for i := range ranked {
		hosts += ranked[i].Hosts
		space = addSat(space, ranked[i].Prefix.NumAddresses())
		if (i+1)%step == 0 || i == len(ranked)-1 {
			out = append(out, CurvePoint{
				Rank:       i + 1,
				Density:    ranked[i].Density,
				HostCov:    float64(hosts) / float64(total),
				SpaceShare: float64(space) / float64(universeSpace),
			})
		}
	}
	return out
}
