// Incremental ranking: the steady-state half of the §3.1 feedback
// loop. A full TASS selection re-counts every seed address and re-sorts
// every responsive prefix; month over month the census barely changes,
// so the Ranker keeps the per-prefix counts and the packed ranking keys
// of PrefixStat order alive and repairs them from a census.Delta —
// work proportional to the churn and the responsive-prefix count, not
// to the seed size.
package core

import (
	"fmt"
	"math/bits"
	"slices"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// Ranker maintains a density ranking of one (seed, universe) pair
// across deltas. Seed it with NewRanker, advance it with Apply once per
// month (or scan cycle), and draw selections with Select — every
// selection is byte-identical to a full SelectCached on the snapshot
// the applied deltas add up to.
//
// A Ranker is single-goroutine state.
type Ranker struct {
	universe rib.Partition
	counts   []int // per-universe-prefix host counts (owned, mutated by Apply)
	total    int   // Σ counts: seed hosts inside the universe

	// keys is the ranking: one packed key per responsive prefix, kept
	// sorted. The tiebreak index is the universe prefix index — monotone
	// in prefix order, so the order matches RankCached's stats-index
	// packing exactly.
	keys    []uint64
	scratch []uint64 // merge target, swapped with keys every Apply

	// Flat per-prefix views of the universe, precomputed once. firsts
	// and lasts turn the sorted-run mapping walk into integer-slice
	// scans with no Prefix method calls; info packs each prefix with
	// its current density into one 16-byte record so the ranked-stat
	// fill — which visits prefixes in density order, i.e. randomly —
	// pays one cache line per entry instead of two. Densities are
	// refreshed only for touched prefixes.
	firsts, lasts []netaddr.Addr
	info          []prefixInfo

	// Per-Apply scratch, reused: the born/died runs mapped to
	// (prefix index, count) pairs, their merge into net touched
	// prefixes, the displaced-prefix bitmap the key filter reads, and
	// the rebuilt keys.
	bornRuns, diedRuns []idxCount
	touchedIdx         []int32
	touchedDelta       []int32
	displaced          []uint64 // bitmap over universe prefix indices
	newKeys            []uint64
	selIdx             []int32 // ascending selected indices per Select
}

// idxCount is a run of delta addresses inside one universe prefix.
type idxCount struct {
	idx int32
	n   int32
}

// prefixInfo pairs a universe prefix with its current density ρ.
type prefixInfo struct {
	pfx  netaddr.Prefix
	dens float64
}

// NewRanker counts the seed over the universe (through cache, sharded
// over workers as in RankCached) and packs the initial ranking. It
// errors when the universe cannot use the packed-key ranking (2^25 or
// more prefixes) — callers should fall back to the full per-month
// recompute, which handles any size.
func NewRanker(seed *census.Snapshot, universe rib.Partition, workers int, cache *census.CountCache) (*Ranker, error) {
	if universe.Len() >= 1<<25 {
		return nil, fmt.Errorf("core: universe of %d prefixes exceeds the packed-key ranking; use the full recompute", universe.Len())
	}
	counts, _ := cache.Counts(seed, universe, workers)
	// Same storage-fault posture as SelectCached: a lazy seed that hit
	// damaged blocks during the counting walk must not silently rank
	// from partial counts.
	if err := seed.StorageErr(); err != nil {
		return nil, fmt.Errorf("core: seed snapshot storage fault: %w", err)
	}
	r := &Ranker{
		universe:  universe,
		counts:    slices.Clone(counts),
		displaced: make([]uint64, (universe.Len()+63)/64),
		firsts:    make([]netaddr.Addr, universe.Len()),
		lasts:     make([]netaddr.Addr, universe.Len()),
		info:      make([]prefixInfo, universe.Len()),
	}
	for i := 0; i < universe.Len(); i++ {
		f, l := universe.FirstAt(i), universe.LastAt(i)
		r.firsts[i] = f
		r.lasts[i] = l
		r.info[i] = prefixInfo{pfx: universe.Prefix(i), dens: float64(counts[i]) / float64(uint64(l-f)+1)}
	}
	r.keys = make([]uint64, 0, len(counts)/2)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		k, err := r.pack(i, c)
		if err != nil {
			return nil, err
		}
		r.total += c
		r.keys = append(r.keys, k)
	}
	slices.Sort(r.keys)
	return r, nil
}

// pack builds the ranking key of prefix i holding c hosts.
func (r *Ranker) pack(i, c int) (uint64, error) {
	l := uint(r.bitsAt(i))
	v := uint64(c) << l
	if v > 1<<32 {
		return 0, fmt.Errorf("core: %d hosts overflow prefix %v", c, r.universe.Prefix(i))
	}
	return packKey(v, l, i), nil
}

// bitsAt recovers prefix i's length from the cached range bounds
// (the range spans 2^(32-bits) addresses), avoiding a Prefix method
// call on the Apply hot path.
func (r *Ranker) bitsAt(i int) int {
	return 32 - bits.Len64(uint64(r.lasts[i]-r.firsts[i]))
}

// Total returns the current seed-host count inside the universe.
func (r *Ranker) Total() int { return r.total }

// Len returns the number of responsive prefixes in the ranking.
func (r *Ranker) Len() int { return len(r.keys) }

// mapRun converts a sorted address run into (prefix index, count)
// pairs, galloping the prefix cursor through the precomputed bound
// slices — O(run · log meanGap) integer compares, no Prefix method
// calls, no per-address full binary search. Addresses outside the
// universe are skipped, exactly as the full recompute skips them.
func (r *Ranker) mapRun(addrs []netaddr.Addr, out []idxCount) []idxCount {
	out = out[:0]
	firsts, lasts := r.firsts, r.lasts
	nu := len(lasts)
	i := 0
	for pos := 0; pos < len(addrs); {
		a := addrs[pos]
		i = netaddr.SeekAddrs(lasts, i, a)
		if i == nu {
			break
		}
		if a < firsts[i] {
			pos++
			continue
		}
		last := lasts[i]
		n := int32(0)
		for pos < len(addrs) && addrs[pos] <= last {
			n++
			pos++
		}
		out = append(out, idxCount{idx: int32(i), n: n})
	}
	return out
}

// Apply advances the ranking by one delta. Touched prefixes — those
// whose slice of the address space intersects a born or died run — get
// their counts adjusted and their keys rebuilt; the repair is one
// bounded sort of the displaced keys plus a linear merge with the
// untouched (still sorted) remainder. Addresses outside the universe
// are ignored, exactly as the full recompute ignores them.
//
// On error the ranker is unchanged: the delta is validated against the
// counts before anything mutates.
func (r *Ranker) Apply(d *census.Delta) error {
	r.bornRuns = r.mapRun(d.Born, r.bornRuns)
	r.diedRuns = r.mapRun(d.Died, r.diedRuns)

	// Merge-join the two index-sorted run lists into net touched
	// prefixes and validate before mutating anything.
	r.touchedIdx = r.touchedIdx[:0]
	r.touchedDelta = r.touchedDelta[:0]
	b, dd := 0, 0
	for b < len(r.bornRuns) || dd < len(r.diedRuns) {
		var idx int32
		var dc int32
		switch {
		case dd == len(r.diedRuns) || (b < len(r.bornRuns) && r.bornRuns[b].idx < r.diedRuns[dd].idx):
			idx, dc = r.bornRuns[b].idx, r.bornRuns[b].n
			b++
		case b == len(r.bornRuns) || r.diedRuns[dd].idx < r.bornRuns[b].idx:
			idx, dc = r.diedRuns[dd].idx, -r.diedRuns[dd].n
			dd++
		default:
			idx, dc = r.bornRuns[b].idx, r.bornRuns[b].n-r.diedRuns[dd].n
			b++
			dd++
		}
		if dc == 0 {
			continue
		}
		c := r.counts[idx] + int(dc)
		if c < 0 {
			return fmt.Errorf("core: delta drops prefix %v below zero hosts (delta does not match the ranked snapshot)", r.universe.Prefix(int(idx)))
		}
		if uint64(c)<<uint(r.bitsAt(int(idx))) > 1<<32 {
			return fmt.Errorf("core: %d hosts overflow prefix %v", c, r.universe.Prefix(int(idx)))
		}
		r.touchedIdx = append(r.touchedIdx, idx)
		r.touchedDelta = append(r.touchedDelta, dc)
	}
	if len(r.touchedIdx) == 0 {
		return nil
	}

	// Adjust counts and densities, mark the displaced prefixes, build
	// replacements.
	r.newKeys = r.newKeys[:0]
	for t, idx := range r.touchedIdx {
		c := r.counts[idx] + int(r.touchedDelta[t])
		r.counts[idx] = c
		// Exact: the range size is a power of two, so this division
		// matches float64(c) / float64(pfx.NumAddresses()) bit for bit.
		r.info[idx].dens = float64(c) / float64(uint64(r.lasts[idx]-r.firsts[idx])+1)
		r.total += int(r.touchedDelta[t])
		r.displaced[idx>>6] |= 1 << (idx & 63)
		if c > 0 {
			k, _ := r.pack(int(idx), c) // overflow pre-validated above
			r.newKeys = append(r.newKeys, k)
		}
	}
	slices.Sort(r.newKeys)

	// One pass: drop every displaced key, merge the rebuilt ones in.
	out := r.scratch[:0]
	j := 0
	for _, k := range r.keys {
		idx := keyIndex(k)
		if r.displaced[idx>>6]&(1<<(idx&63)) != 0 {
			continue
		}
		for j < len(r.newKeys) && r.newKeys[j] < k {
			out = append(out, r.newKeys[j])
			j++
		}
		out = append(out, k)
	}
	out = append(out, r.newKeys[j:]...)
	r.keys, r.scratch = out, r.keys
	for _, idx := range r.touchedIdx {
		r.displaced[idx>>6] &^= 1 << (idx & 63)
	}
	return nil
}

// Ranked materializes the current ranking as PrefixStats in density
// order — the same slice RankCached would build from the current
// snapshot (densities divide by the same precomputed float64
// denominator, so every bit matches). The slice is freshly allocated;
// it is not invalidated by later Applies.
func (r *Ranker) Ranked() []PrefixStat {
	ranked := make([]PrefixStat, 0, len(r.keys))
	totalF := float64(r.total)
	for _, k := range r.keys {
		// The key already encodes the host count (v = hosts<<len), so
		// the fill decodes it instead of a second random memory load.
		plen := uint(k>>25) & 0x3F
		c := int((^(k >> 31) & (1<<33 - 1)) >> plen)
		inf := &r.info[keyIndex(k)]
		ranked = append(ranked, PrefixStat{
			Prefix:   inf.pfx,
			Hosts:    c,
			Density:  inf.dens,
			Coverage: float64(c) / totalF,
		})
	}
	return ranked
}

// Select draws a TASS selection from the current ranking: byte-identical
// to SelectCached on the snapshot the applied deltas add up to, at the
// cost of a stat materialization and the top-K selection walk instead
// of a recount and full re-sort. The selected partition is built
// without a sort: the chosen prefixes' universe indices are collected
// through a bitmap, which yields them in ascending — already sorted
// and disjoint — order.
func (r *Ranker) Select(opts Options) (*Selection, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	sel, err := selectionHead(r.Ranked(), r.total, r.universe, opts)
	if err != nil {
		return nil, err
	}
	bm := r.displaced // zero between Applies; restored below
	for j := 0; j < sel.K; j++ {
		idx := keyIndex(r.keys[j])
		bm[idx>>6] |= 1 << (idx & 63)
	}
	r.selIdx = r.selIdx[:0]
	for w, word := range bm {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			r.selIdx = append(r.selIdx, int32(w<<6+b))
		}
		bm[w] = 0
	}
	sel.part = r.universe.SubsetAscending(r.selIdx)
	return sel, nil
}
