package core

import (
	"fmt"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/par"
	"github.com/tass-scan/tass/internal/rib"
)

// SelectMany evaluates a grid of selection options against one seed
// snapshot: the snapshot is ranked once (with the counting walk sharded
// over the workers), then every Options entry is selected concurrently
// from the shared ranking. workers bounds the goroutines (0 means
// GOMAXPROCS). The i-th result equals Select(seed, universe, grid[i])
// exactly; the first error by grid order wins.
func SelectMany(seed *census.Snapshot, universe rib.Partition, grid []Options, workers int) ([]*Selection, error) {
	return SelectManyCached(seed, universe, grid, workers, nil)
}

// SelectManyCached is SelectMany with the counting walk memoized in
// cache by (seed, universe) identity (nil computes every call). Results
// are identical to SelectMany.
func SelectManyCached(seed *census.Snapshot, universe rib.Partition, grid []Options, workers int, cache *census.CountCache) ([]*Selection, error) {
	// Fail fast on invalid options before paying for the ranking.
	for i, opts := range grid {
		if err := opts.validate(); err != nil {
			return nil, fmt.Errorf("core: grid entry %d: %w", i, err)
		}
	}
	ranked := RankCached(seed, universe, workers, cache)
	sels := make([]*Selection, len(grid))
	errs := make([]error, len(grid))
	par.ForEach(len(grid), workers, func(i int) {
		sels[i], errs[i] = selectRanked(ranked, universe, grid[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: grid entry %d (φ=%v): %w", i, grid[i].Phi, err)
		}
	}
	return sels, nil
}

// SelectPhis is SelectMany over a φ grid with otherwise-default options.
func SelectPhis(seed *census.Snapshot, universe rib.Partition, phis []float64, workers int) ([]*Selection, error) {
	return SelectPhisCached(seed, universe, phis, workers, nil)
}

// SelectPhisCached is SelectPhis with the counting walk memoized in
// cache (nil computes every call).
func SelectPhisCached(seed *census.Snapshot, universe rib.Partition, phis []float64, workers int, cache *census.CountCache) ([]*Selection, error) {
	grid := make([]Options, len(phis))
	for i, phi := range phis {
		grid[i] = Options{Phi: phi}
	}
	return SelectManyCached(seed, universe, grid, workers, cache)
}
