package core

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// incPartition builds a universe of 512 /20s with mixed-length holes:
// enough prefixes that rankings have real structure, small enough that
// the test stays quick.
func incPartition(t testing.TB) rib.Partition {
	t.Helper()
	ps := make([]netaddr.Prefix, 0, 512)
	for i := 0; i < 512; i++ {
		bits := 20
		if i%7 == 0 {
			bits = 22 // a sprinkle of longer prefixes for tie shapes
		}
		ps = append(ps, netaddr.MustPrefixFrom(netaddr.Addr(1<<28+uint32(i)<<12), bits))
	}
	p, err := rib.NewPartition(ps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func incSnapshot(rng *rand.Rand, month, n int) *census.Snapshot {
	seen := make(map[netaddr.Addr]bool, n)
	addrs := make([]netaddr.Addr, 0, n)
	for len(addrs) < n {
		// Concentrate on a few prefixes so densities vary and ties occur.
		block := rng.Intn(600) // some addresses fall outside the partition
		a := netaddr.Addr(1<<28 + uint32(block)<<12 + uint32(rng.Intn(64)))
		if seen[a] {
			continue
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	return census.NewSnapshot("x", month, addrs)
}

func churnSnapshot(rng *rand.Rand, s *census.Snapshot, month int, pDie float64) *census.Snapshot {
	present := make(map[netaddr.Addr]bool, len(s.Addrs))
	for _, a := range s.Addrs {
		present[a] = true
	}
	var addrs []netaddr.Addr
	for _, a := range s.Addrs {
		if rng.Float64() >= pDie {
			addrs = append(addrs, a)
		}
	}
	for births := int(pDie * float64(len(s.Addrs))); births > 0; {
		block := rng.Intn(600)
		a := netaddr.Addr(1<<28 + uint32(block)<<12 + uint32(rng.Intn(64)))
		if present[a] {
			continue
		}
		present[a] = true
		addrs = append(addrs, a)
		births--
	}
	return census.NewSnapshot("x", month, addrs)
}

// mustEqualSelections asserts byte-identity of two selections,
// including the full ranking and the derived partition.
func mustEqualSelections(t *testing.T, label string, got, want *Selection) {
	t.Helper()
	if got.K != want.K || got.SeedHosts != want.SeedHosts ||
		got.HostCoverage != want.HostCoverage || got.Space != want.Space ||
		got.SpaceShare != want.SpaceShare {
		t.Fatalf("%s: selection header diverged:\ngot  K=%d N=%d cov=%v space=%d share=%v\nwant K=%d N=%d cov=%v space=%d share=%v",
			label, got.K, got.SeedHosts, got.HostCoverage, got.Space, got.SpaceShare,
			want.K, want.SeedHosts, want.HostCoverage, want.Space, want.SpaceShare)
	}
	if len(got.Ranked) != len(want.Ranked) {
		t.Fatalf("%s: ranking length %d, want %d", label, len(got.Ranked), len(want.Ranked))
	}
	for i := range got.Ranked {
		if got.Ranked[i] != want.Ranked[i] {
			t.Fatalf("%s: rank %d diverged: got %+v, want %+v", label, i, got.Ranked[i], want.Ranked[i])
		}
	}
	if !slices.Equal(got.Partition().Prefixes(), want.Partition().Prefixes()) {
		t.Fatalf("%s: selected partitions diverge", label)
	}
}

// TestRankerMatchesFullRecompute is the core golden-equality property:
// a Ranker advanced by monthly deltas produces selections byte-identical
// to a full SelectCached on every month's snapshot, across seeds,
// worker counts, churn levels and option shapes.
func TestRankerMatchesFullRecompute(t *testing.T) {
	part := incPartition(t)
	grids := []Options{
		{Phi: 0.95},
		{Phi: 1},
		{Phi: 0.5, MinDensity: 1e-4},
		{Phi: 0.99, MaxPrefixes: 40},
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, workers := range []int{1, 2, 8} {
			rng := rand.New(rand.NewSource(seed))
			snap := incSnapshot(rng, 0, 4000)
			r, err := NewRanker(snap, part, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			for month := 1; month <= 8; month++ {
				next := churnSnapshot(rng, snap, month, 0.02+0.1*rng.Float64())
				if err := r.Apply(snap.Diff(next)); err != nil {
					t.Fatalf("seed %d month %d: %v", seed, month, err)
				}
				snap = next
				if r.Total() != snap.CountIn(part) {
					t.Fatalf("seed %d month %d: total %d, want %d", seed, month, r.Total(), snap.CountIn(part))
				}
				for _, opts := range grids {
					inc, err := r.Select(opts)
					if err != nil {
						t.Fatal(err)
					}
					full, err := SelectCached(snap, part, opts, workers, nil)
					if err != nil {
						t.Fatal(err)
					}
					mustEqualSelections(t, "incremental vs full", inc, full)
				}
			}
		}
	}
}

// TestRankerEmptyAndFullChurn covers the delta extremes: a no-op delta,
// total population replacement, and emptying the universe.
func TestRankerEmptyAndFullChurn(t *testing.T) {
	part := incPartition(t)
	rng := rand.New(rand.NewSource(4))
	snap := incSnapshot(rng, 0, 2000)
	r, err := NewRanker(snap, part, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Empty delta: nothing moves.
	if err := r.Apply(snap.Diff(census.NewSnapshot("x", 1, snap.Addrs))); err != nil {
		t.Fatal(err)
	}
	inc, err := r.Select(Options{Phi: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Select(snap, part, Options{Phi: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSelections(t, "empty delta", inc, full)

	// Full churn: a disjoint population (every address moves within its
	// block, so the new population stays inside the universe).
	moved := make([]netaddr.Addr, 0, len(snap.Addrs))
	for _, a := range snap.Addrs {
		moved = append(moved, a+64)
	}
	next := census.NewSnapshot("x", 2, moved)
	if err := r.Apply(snap.Diff(next)); err != nil {
		t.Fatal(err)
	}
	inc, err = r.Select(Options{Phi: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	full, err = Select(next, part, Options{Phi: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSelections(t, "full churn", inc, full)

	// Everything dies: selection must fail like the full path does.
	if err := r.Apply(next.Diff(census.NewSnapshot("x", 3, nil))); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Select(Options{Phi: 0.95}); err == nil {
		t.Fatal("empty universe selected without error")
	}
}

// TestRankerRejectsMismatchedDelta pins the defense against deltas that
// do not belong to the ranked snapshot.
func TestRankerRejectsMismatchedDelta(t *testing.T) {
	part := incPartition(t)
	rng := rand.New(rand.NewSource(5))
	snap := incSnapshot(rng, 0, 100)
	r, err := NewRanker(snap, part, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill more hosts in one prefix than it holds.
	p := part.Prefix(0)
	bogus := &census.Delta{Protocol: "x", FromMonth: 0, ToMonth: 1}
	for off := uint32(0); off < 64; off++ {
		bogus.Died = append(bogus.Died, p.First()+netaddr.Addr(off))
	}
	if err := r.Apply(bogus); err == nil {
		t.Fatal("mismatched delta applied without error")
	}
}
