package core

import (
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

// gridFixture builds a universe of /24s with skewed densities and a
// matching seed snapshot.
func gridFixture(t *testing.T) (*census.Snapshot, rib.Partition) {
	t.Helper()
	var ps []netaddr.Prefix
	var addrs []netaddr.Addr
	for i := 0; i < 512; i++ {
		base := netaddr.Addr(0x0A000000 + uint32(i)<<8)
		ps = append(ps, netaddr.MustPrefixFrom(base, 24))
		// Heavy-tailed host counts: a few dense prefixes, a long sparse
		// tail, some empty.
		hosts := 0
		switch {
		case i%97 == 0:
			hosts = 200
		case i%7 == 0:
			hosts = 11
		case i%3 == 0:
			hosts = 1
		}
		for h := 0; h < hosts; h++ {
			addrs = append(addrs, base+netaddr.Addr(h))
		}
	}
	part, err := rib.NewPartition(ps)
	if err != nil {
		t.Fatal(err)
	}
	return census.NewSnapshot("ftp", 0, addrs), part
}

func TestSelectManyMatchesSelect(t *testing.T) {
	seed, part := gridFixture(t)
	phis := []float64{1, 0.99, 0.95, 0.7, 0.5}
	for _, workers := range []int{0, 1, 2, 8} {
		sels, err := SelectPhis(seed, part, phis, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, phi := range phis {
			want, err := Select(seed, part, Options{Phi: phi})
			if err != nil {
				t.Fatal(err)
			}
			got := sels[i]
			if got.K != want.K || got.SeedHosts != want.SeedHosts ||
				got.HostCoverage != want.HostCoverage ||
				got.Space != want.Space || got.SpaceShare != want.SpaceShare {
				t.Errorf("workers=%d φ=%v: %+v, want %+v", workers, phi, got, want)
			}
			if len(got.Ranked) != len(want.Ranked) {
				t.Fatalf("workers=%d φ=%v: ranked %d vs %d", workers, phi, len(got.Ranked), len(want.Ranked))
			}
			for j := range want.Ranked {
				if got.Ranked[j] != want.Ranked[j] {
					t.Fatalf("workers=%d φ=%v: rank %d differs", workers, phi, j)
				}
			}
		}
	}
}

func TestSelectManyPropagatesErrors(t *testing.T) {
	seed, part := gridFixture(t)
	if _, err := SelectMany(seed, part, []Options{{Phi: 0.95}, {Phi: 0}}, 4); err == nil {
		t.Error("invalid φ in the grid must fail")
	}
}

func TestRankWorkersMatchesRank(t *testing.T) {
	seed, part := gridFixture(t)
	want := Rank(seed, part)
	for _, workers := range []int{0, 2, 16} {
		got := RankWorkers(seed, part, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d ranked, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: rank %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
