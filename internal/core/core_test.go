package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/rib"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

// fixture: three prefixes with hand-computable densities.
//
//	10.0.0.0/24   4 hosts  ρ = 4/256   = 0.015625
//	20.0.0.0/16   8 hosts  ρ = 8/65536 ≈ 0.000122
//	30.0.0.0/8    4 hosts  ρ = 4/2^24  ≈ 2.4e-7
//	40.0.0.0/24   0 hosts  (must be excluded)
func fixture(t *testing.T) (*census.Snapshot, rib.Partition) {
	t.Helper()
	part, err := rib.NewPartition([]netaddr.Prefix{
		pfx("10.0.0.0/24"), pfx("20.0.0.0/16"), pfx("30.0.0.0/8"), pfx("40.0.0.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []netaddr.Addr
	for i := 0; i < 4; i++ {
		addrs = append(addrs, pfx("10.0.0.0/24").First()+netaddr.Addr(i))
	}
	for i := 0; i < 8; i++ {
		addrs = append(addrs, pfx("20.0.0.0/16").First()+netaddr.Addr(i*100))
	}
	for i := 0; i < 4; i++ {
		addrs = append(addrs, pfx("30.0.0.0/8").First()+netaddr.Addr(i*10000))
	}
	return census.NewSnapshot("ftp", 0, addrs), part
}

func TestRankOrderAndValues(t *testing.T) {
	seed, part := fixture(t)
	ranked := Rank(seed, part)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d prefixes, want 3 (zero-density excluded)", len(ranked))
	}
	wantOrder := []string{"10.0.0.0/24", "20.0.0.0/16", "30.0.0.0/8"}
	for i, w := range wantOrder {
		if ranked[i].Prefix.String() != w {
			t.Fatalf("rank %d = %v, want %s", i, ranked[i].Prefix, w)
		}
	}
	if ranked[0].Hosts != 4 || ranked[0].Density != 4.0/256 {
		t.Errorf("rank 0 stats: %+v", ranked[0])
	}
	if ranked[1].Coverage != 8.0/16 {
		t.Errorf("rank 1 coverage: %v", ranked[1].Coverage)
	}
}

func TestSelectPhi1(t *testing.T) {
	seed, part := fixture(t)
	sel, err := Select(seed, part, Options{Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 3 {
		t.Fatalf("K = %d, want all 3 responsive prefixes", sel.K)
	}
	if sel.HostCoverage != 1 {
		t.Errorf("HostCoverage = %v", sel.HostCoverage)
	}
	wantSpace := uint64(256 + 65536 + 1<<24)
	if sel.Space != wantSpace {
		t.Errorf("Space = %d, want %d", sel.Space, wantSpace)
	}
	// The zero-density 40.0.0.0/24 must not be selected.
	for _, p := range sel.Prefixes() {
		if p == pfx("40.0.0.0/24") {
			t.Error("zero-density prefix selected")
		}
	}
}

func TestSelectPartialPhi(t *testing.T) {
	seed, part := fixture(t)
	// φ=0.25: rank-1 prefix already covers 4/16 = 0.25, but the paper's
	// step 4 requires Σφ_i > φ strictly, so one prefix is enough only
	// when its coverage strictly exceeds 0.25. 4/16 == 0.25, so K must
	// be 2.
	sel, err := Select(seed, part, Options{Phi: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 {
		t.Fatalf("K = %d, want 2 (strict >φ)", sel.K)
	}
	// φ=0.2: first prefix covers 0.25 > 0.2 → K=1.
	sel, err = Select(seed, part, Options{Phi: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 {
		t.Fatalf("K = %d, want 1", sel.K)
	}
	if sel.HostCoverage != 0.25 {
		t.Errorf("HostCoverage = %v", sel.HostCoverage)
	}
	if sel.Space != 256 {
		t.Errorf("Space = %d", sel.Space)
	}
}

func TestSelectMinDensity(t *testing.T) {
	seed, part := fixture(t)
	// Threshold between rank-2 (ρ≈1.2e-4) and rank-3 (ρ≈2.4e-7).
	sel, err := Select(seed, part, Options{Phi: 1, MinDensity: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 {
		t.Fatalf("K = %d, want 2 (density cut)", sel.K)
	}
	if sel.HostCoverage != 12.0/16 {
		t.Errorf("HostCoverage = %v", sel.HostCoverage)
	}
}

func TestSelectMaxPrefixes(t *testing.T) {
	seed, part := fixture(t)
	sel, err := Select(seed, part, Options{Phi: 1, MaxPrefixes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 {
		t.Fatalf("K = %d, want 1", sel.K)
	}
}

func TestSelectErrors(t *testing.T) {
	seed, part := fixture(t)
	for _, phi := range []float64{0, -0.5, 1.5} {
		if _, err := Select(seed, part, Options{Phi: phi}); err == nil {
			t.Errorf("φ=%v accepted", phi)
		}
	}
	empty := census.NewSnapshot("ftp", 0, nil)
	if _, err := Select(empty, part, Options{Phi: 1}); err == nil {
		t.Error("empty seed accepted")
	}
}

func TestSelectionHitrate(t *testing.T) {
	seed, part := fixture(t)
	sel, err := Select(seed, part, Options{Phi: 0.2}) // only 10.0.0.0/24
	if err != nil {
		t.Fatal(err)
	}
	later := census.NewSnapshot("ftp", 1, []netaddr.Addr{
		pfx("10.0.0.0/24").First() + 9, // inside selection
		pfx("20.0.0.0/16").First() + 1, // outside
		pfx("30.0.0.0/8").First() + 1,  // outside
		pfx("10.0.0.0/24").First() + 5, // inside
	})
	if got := sel.Hitrate(later); got != 0.5 {
		t.Fatalf("Hitrate = %v, want 0.5", got)
	}
	if got := sel.Hitrate(census.NewSnapshot("ftp", 2, nil)); got != 0 {
		t.Fatalf("Hitrate(empty) = %v", got)
	}
}

func TestSelectionEfficiency(t *testing.T) {
	seed, part := fixture(t)
	sel, err := Select(seed, part, Options{Phi: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// 256 probes for 4 hosts.
	if got := sel.Efficiency(); got != 64 {
		t.Fatalf("Efficiency = %v, want 64", got)
	}
}

// TestSelectionInvariants property-tests the algorithm's defining
// invariants on random universes.
func TestSelectionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64, phiRaw uint8) bool {
		phi := 0.05 + 0.95*float64(phiRaw)/255 // (0,1]
		local := rand.New(rand.NewSource(seed))
		// Random disjoint partition of /16s under 10.0.0.0/8.
		var ps []netaddr.Prefix
		for i := 0; i < 64; i++ {
			ps = append(ps, netaddr.MustPrefixFrom(
				netaddr.AddrFrom4(10, byte(i*4), 0, 0), 16))
		}
		part, err := rib.NewPartition(ps)
		if err != nil {
			return false
		}
		var addrs []netaddr.Addr
		for i := 0; i < 2000; i++ {
			p := ps[local.Intn(len(ps))]
			if local.Intn(4) == 0 {
				continue // leave some prefixes sparse or empty
			}
			addrs = append(addrs, p.First()+netaddr.Addr(local.Intn(1<<16)))
		}
		if len(addrs) == 0 {
			return true
		}
		snap := census.NewSnapshot("p", 0, addrs)
		sel, err := Select(snap, part, Options{Phi: phi})
		if err != nil {
			return false
		}
		// (1) Achieved coverage exceeds φ (or equals 1 at φ=1).
		if sel.HostCoverage < phi && !(phi == 1 && sel.HostCoverage == 1) {
			return false
		}
		// (2) Minimality: dropping the last selected prefix would fall
		// to or below φ (for φ<1) — the "smallest k" requirement.
		if sel.K > 1 && phi < 1 {
			withoutLast := sel.HostCoverage -
				float64(sel.Ranked[sel.K-1].Hosts)/float64(sel.SeedHosts)
			if withoutLast > phi+1e-12 {
				return false
			}
		}
		// (3) Ranking is by non-increasing density.
		for i := 1; i < len(sel.Ranked); i++ {
			if sel.Ranked[i].Density > sel.Ranked[i-1].Density+1e-15 {
				return false
			}
		}
		// (4) Hitrate on the seed snapshot equals achieved coverage.
		if h := sel.Hitrate(snap); h < sel.HostCoverage-1e-9 || h > sel.HostCoverage+1e-9 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageCurve(t *testing.T) {
	seed, part := fixture(t)
	ranked := Rank(seed, part)
	curve := CoverageCurve(ranked, part.AddressCount(), 0)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	last := curve[len(curve)-1]
	if last.HostCov != 1 {
		t.Errorf("final host coverage %v", last.HostCov)
	}
	// Space share of all responsive prefixes: (256+65536+2^24)/(part space).
	want := float64(256+65536+1<<24) / float64(part.AddressCount())
	if last.SpaceShare != want {
		t.Errorf("final space share %v, want %v", last.SpaceShare, want)
	}
	// Downsampling caps the point count.
	small := CoverageCurve(ranked, part.AddressCount(), 2)
	if len(small) > 3 {
		t.Errorf("downsampled curve has %d points", len(small))
	}
	if small[len(small)-1].Rank != 3 {
		t.Error("downsampled curve must keep the final rank")
	}
	if CoverageCurve[netaddr.Addr](nil, 1, 0) != nil {
		t.Error("empty ranking must give empty curve")
	}
}

// TestRankPackedMatchesComparator pins the key-packed slices.Sort in
// RankCached to the comparator ordering it replaced: random partitions
// of mixed prefix lengths, with host counts rigged to produce every tie
// shape — equal density at equal length (prefix-order tie), and equal
// density at different lengths (host-count tie).
func TestRankPackedMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var ps []netaddr.Prefix
		var addrs []netaddr.Addr
		base := netaddr.Addr(uint32(10) << 24)
		for i := 0; i < 40; i++ {
			bits := 20 + rng.Intn(13) // /20 .. /32
			p := netaddr.MustPrefixFrom(base, bits)
			// Align up to the prefix size, then advance past it.
			size := p.NumAddresses()
			first := (uint64(base) + size - 1) / size * size
			if first+size > 1<<32 {
				break
			}
			p = netaddr.MustPrefixFrom(netaddr.Addr(first), bits)
			base = netaddr.Addr(first + size)
			ps = append(ps, p)
			// Host counts biased toward small powers of two so that
			// c<<len collides across prefixes frequently.
			c := 1 << rng.Intn(4)
			if c > int(size) {
				c = int(size)
			}
			if rng.Intn(5) == 0 {
				c = 0
			}
			for k := 0; k < c; k++ {
				addrs = append(addrs, p.First()+netaddr.Addr(k))
			}
		}
		part, err := rib.NewPartition(ps)
		if err != nil {
			t.Fatal(err)
		}
		seed := census.NewSnapshot("x", 0, addrs)
		got := Rank(seed, part)

		// Reference: the pre-packing comparator ordering.
		want := append([]PrefixStat(nil), got...)
		sort.SliceStable(want, func(a, b int) bool {
			sa, sb := &want[a], &want[b]
			if sa.Density != sb.Density {
				return sa.Density > sb.Density
			}
			if sa.Hosts != sb.Hosts {
				return sa.Hosts > sb.Hosts
			}
			return sa.Prefix.Compare(sb.Prefix) < 0
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
