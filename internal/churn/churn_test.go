package churn

import (
	"testing"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/topo"
)

func testUniverse(t testing.TB, seed int64) *topo.Universe {
	t.Helper()
	cfg := topo.SmallConfig(seed)
	cfg.Allocated = []netaddr.Prefix{netaddr.MustParsePrefix("20.0.0.0/8")}
	cfg.Protocols = topo.DefaultProfiles(0.004)
	u, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestStepPreservesInvariants(t *testing.T) {
	u := testUniverse(t, 21)
	sim := New(u, 99)
	for m := 0; m < 3; m++ {
		sim.Step()
	}
	if sim.Month() != 3 {
		t.Fatalf("Month = %d", sim.Month())
	}
	for _, name := range u.Protocols() {
		for _, h := range u.Pops[name].Hosts {
			lp := u.Less.Prefix(int(h.LIdx))
			if !lp.Contains(h.Addr) {
				t.Fatalf("%s: host %v outside its l-prefix %v after churn", name, h.Addr, lp)
			}
		}
	}
}

func TestStepPopulationStationary(t *testing.T) {
	u := testUniverse(t, 22)
	before := len(u.Pops["http"].Hosts)
	sim := New(u, 1)
	for m := 0; m < 6; m++ {
		sim.Step()
	}
	if after := len(u.Pops["http"].Hosts); after != before {
		t.Fatalf("population changed: %d -> %d", before, after)
	}
}

func TestRunDeterministic(t *testing.T) {
	s1 := Run(testUniverse(t, 23), 7, 2)
	s2 := Run(testUniverse(t, 23), 7, 2)
	for name := range s1 {
		a, b := s1[name], s2[name]
		if a.Months() != b.Months() {
			t.Fatalf("%s: months differ", name)
		}
		for m := 0; m < a.Months(); m++ {
			if a.At(m).Hosts() != b.At(m).Hosts() {
				t.Fatalf("%s month %d: %d vs %d hosts", name, m, a.At(m).Hosts(), b.At(m).Hosts())
			}
			for i := range a.At(m).Addrs {
				if a.At(m).Addrs[i] != b.At(m).Addrs[i] {
					t.Fatalf("%s month %d addr %d differs", name, m, i)
				}
			}
		}
	}
}

func TestRunSeriesShape(t *testing.T) {
	series := Run(testUniverse(t, 24), 3, 6)
	if len(series) != 4 {
		t.Fatalf("protocols: %d", len(series))
	}
	for name, s := range series {
		if s.Months() != 7 {
			t.Fatalf("%s: %d snapshots, want 7", name, s.Months())
		}
		for m, snap := range s.Snapshots {
			if snap.Month != m {
				t.Fatalf("%s: snapshot %d labeled month %d", name, m, snap.Month)
			}
			if snap.Hosts() == 0 {
				t.Fatalf("%s month %d: empty snapshot", name, m)
			}
		}
	}
}

// TestHitlistDecayShape verifies the Figure 5 mechanism: an address
// hitlist taken at month 0 loses a large share of hosts after one month,
// and CWMP (mostly dynamic residential hosts) decays far more than FTP.
func TestHitlistDecayShape(t *testing.T) {
	series := Run(testUniverse(t, 25), 5, 2)
	decay := func(name string) float64 {
		s := series[name]
		base := s.At(0)
		later := s.At(1)
		return float64(census.IntersectCount(base.Addrs, later.Addrs)) / float64(later.Hosts())
	}
	ftp, cwmp := decay("ftp"), decay("cwmp")
	if ftp < 0.6 || ftp > 0.95 {
		t.Errorf("ftp hitlist hitrate after 1 month = %.3f, want roughly 0.8", ftp)
	}
	if cwmp >= ftp {
		t.Errorf("cwmp hitlist hitrate %.3f should decay faster than ftp %.3f", cwmp, ftp)
	}
}

// TestPrefixStability verifies the Figure 6 mechanism: the set of
// responsive l-prefixes at month 0 still covers the vast majority of
// hosts months later, even while the hitlist collapses.
func TestPrefixStability(t *testing.T) {
	u := testUniverse(t, 26)
	series := Run(u, 5, 3)
	for _, name := range []string{"ftp", "cwmp"} {
		s := series[name]
		base := s.At(0)
		counts, _ := base.CountByPrefix(u.Less)
		var idx []int
		for i, c := range counts {
			if c > 0 {
				idx = append(idx, i)
			}
		}
		sel := u.Less.Subset(idx)
		last := s.At(3)
		hitrate := float64(last.CountIn(sel)) / float64(last.Hosts())
		if hitrate < 0.95 {
			t.Errorf("%s: TASS-style prefix hitrate after 3 months = %.3f, want > 0.95", name, hitrate)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	u := testUniverse(b, 1)
	sim := New(u, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// TestStripedGoldenEquality is the stripe determinism contract: the
// full monthly series is byte-identical across worker counts 1/2/8
// (and the GOMAXPROCS default), for several seeds, with and without
// eager set prebuilding. Stripes are derived per (protocol, stripe,
// month), so scheduling cannot change a single draw.
func TestStripedGoldenEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ref := RunSim(testUniverse(t, seed), seed+10, 3, RunConfig{Workers: 1})
		for _, cfg := range []RunConfig{
			{Workers: 2},
			{Workers: 8},
			{Workers: 0},
			{Workers: 8, PrebuildSets: true},
		} {
			got := RunSim(testUniverse(t, seed), seed+10, 3, cfg)
			if len(got) != len(ref) {
				t.Fatalf("seed %d %+v: %d protocols, want %d", seed, cfg, len(got), len(ref))
			}
			for name, rs := range ref {
				gs := got[name]
				if gs.Months() != rs.Months() {
					t.Fatalf("seed %d %+v %s: months %d vs %d", seed, cfg, name, gs.Months(), rs.Months())
				}
				for m := 0; m < rs.Months(); m++ {
					ga, ra := gs.At(m).Addrs, rs.At(m).Addrs
					if len(ga) != len(ra) {
						t.Fatalf("seed %d %+v %s month %d: %d vs %d addrs", seed, cfg, name, m, len(ga), len(ra))
					}
					for i := range ra {
						if ga[i] != ra[i] {
							t.Fatalf("seed %d %+v %s month %d: addr %d differs (%v vs %v)",
								seed, cfg, name, m, i, ga[i], ra[i])
						}
					}
				}
			}
		}
	}
}

// TestSimulatorMatchesRunSim pins the Simulator step/snapshot API to
// the RunSim series: both must walk the same substream schedule.
func TestSimulatorMatchesRunSim(t *testing.T) {
	ref := RunSim(testUniverse(t, 31), 77, 2, RunConfig{Workers: 4})
	sim := New(testUniverse(t, 31), 77)
	sim.Workers = 3
	for m := 0; m <= 2; m++ {
		if m > 0 {
			sim.Step()
		}
		for name, rs := range ref {
			got := sim.Snapshot(name)
			want := rs.At(m)
			if got.Hosts() != want.Hosts() {
				t.Fatalf("%s month %d: %d vs %d hosts", name, m, got.Hosts(), want.Hosts())
			}
			for i := range want.Addrs {
				if got.Addrs[i] != want.Addrs[i] {
					t.Fatalf("%s month %d: addr %d differs", name, m, i)
				}
			}
		}
	}
}

// TestPrebuiltSetMatchesLazy checks that a prebuilt snapshot set view
// answers exactly like the lazily built one.
func TestPrebuiltSetMatchesLazy(t *testing.T) {
	u := testUniverse(t, 32)
	series := RunSim(u, 5, 1, RunConfig{Workers: 2, PrebuildSets: true})
	for name, s := range series {
		for m := 0; m < s.Months(); m++ {
			snap := s.At(m)
			rebuilt := census.NewSnapshot(snap.Protocol, snap.Month, snap.Addrs)
			if got, want := snap.CountIn(u.Less), rebuilt.CountIn(u.Less); got != want {
				t.Fatalf("%s month %d: prebuilt CountIn %d, lazy %d", name, m, got, want)
			}
			if got, want := snap.Set().Len(), rebuilt.Set().Len(); got != want {
				t.Fatalf("%s month %d: set len %d vs %d", name, m, got, want)
			}
		}
	}
}

// TestRunSimEmptyUniverse guards the degenerate no-protocols case: an
// empty map, not a worker-split division by zero.
func TestRunSimEmptyUniverse(t *testing.T) {
	u := testUniverse(t, 50)
	u.Cfg.Protocols = nil
	if got := RunSim(u, 1, 1, RunConfig{}); len(got) != 0 {
		t.Fatalf("want empty series map, got %d entries", len(got))
	}
}
