// Native delta emission: the churn step already knows every address a
// host vacated or occupied, so the monthly census.Delta can be derived
// from those (old, new) pairs in O(changed hosts) — no full-population
// re-extract, no full re-sort. The subtlety is deduplication: a
// snapshot answers once per address, however many hosts share it, so
// an address only dies when its last holder leaves and is only born
// when its first holder arrives. The tracker keeps the per-address
// holder refcounts that make that classification exact.
package churn

import (
	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/topo"
)

// addrChange is one host's address move during a churn step.
type addrChange struct {
	from, to netaddr.Addr
}

// tracker mirrors one population as its deduplicated census snapshot
// plus the (rare) addresses shared by two or more hosts, and turns a
// month's recorded changes into the exact snapshot-level delta and the
// next snapshot. The month's vacated and occupied addresses are
// radix-sorted (O(changed)); holder multiplicities come from the dupes
// map when an address is shared and from snapshot membership otherwise,
// so no full multiset is maintained — the only O(population) work per
// month is the single block-copying event merge in delta, which
// classifies born/died and materializes the next snapshot's address
// slice in the same pass.
type tracker struct {
	snap     *census.Snapshot       // current deduplicated snapshot
	dupes    map[netaddr.Addr]int32 // addresses held by >= 2 hosts
	rem, add []netaddr.Addr         // per-month change scratch
	sortBuf  []netaddr.Addr         // radix scratch for rem/add
}

// newTracker indexes the population's current addresses, taking snap
// as the (already extracted) current snapshot. Build it before the
// first recorded step; from then on delta keeps it current.
func newTracker(pop *topo.Population, snap *census.Snapshot) *tracker {
	addrs := make([]netaddr.Addr, len(pop.Hosts))
	for i := range pop.Hosts {
		addrs[i] = pop.Hosts[i].Addr
	}
	census.SortAddrs(addrs)
	dupes := make(map[netaddr.Addr]int32)
	for i := 0; i < len(addrs); {
		j := i + 1
		for j < len(addrs) && addrs[j] == addrs[i] {
			j++
		}
		if j-i >= 2 {
			dupes[addrs[i]] = int32(j - i)
		}
		i = j
	}
	return &tracker{snap: snap, dupes: dupes}
}

// delta folds one month's per-stripe change records into the holder
// counts and returns the census delta from month `from` to from+1
// together with the next snapshot: an address is born when its holder
// count rises from zero, dies when it falls to zero, and stays visible
// while other holders remain. Events are processed in address order,
// so born and died come out sorted for free.
func (t *tracker) delta(protocol string, from int, recs [][]addrChange) (*census.Delta, *census.Snapshot) {
	t.rem, t.add = t.rem[:0], t.add[:0]
	for _, rec := range recs {
		for _, c := range rec {
			t.rem = append(t.rem, c.from)
			t.add = append(t.add, c.to)
		}
	}
	if cap(t.sortBuf) < len(t.rem) {
		t.sortBuf = make([]netaddr.Addr, len(t.rem))
	}
	census.SortAddrsScratch(t.rem, t.sortBuf[:len(t.rem)])
	census.SortAddrsScratch(t.add, t.sortBuf[:len(t.add)])

	// One fused traversal produces the delta and the next snapshot:
	// untouched runs of the current snapshot are block-copied into the
	// new address slice, and at each event address the merge position
	// itself answers the membership half of the holder-count question —
	// the dupes map is consulted only for present addresses, and only
	// when shared holders exist at all.
	base, add, rem := t.snap.Addrs, t.add, t.rem
	out := make([]netaddr.Addr, 0, len(base)+len(add))
	var born, died []netaddr.Addr
	i, j, k := 0, 0, 0
	for j < len(add) || k < len(rem) {
		var e netaddr.Addr
		if j < len(add) && (k == len(rem) || add[j] <= rem[k]) {
			e = add[j]
		} else {
			e = rem[k]
		}
		p := netaddr.SeekAddrs(base, i, e)
		out = append(out, base[i:p]...)
		i = p
		present := i < len(base) && base[i] == e
		if present {
			i++
		}
		na := 0
		for j < len(add) && add[j] == e {
			na++
			j++
		}
		nr := 0
		for k < len(rem) && rem[k] == e {
			nr++
			k++
		}
		if na == nr {
			// Holder churn without a net change (e.g. one host left the
			// address, another arrived): nothing to reclassify.
			if present {
				out = append(out, e)
			}
			continue
		}
		var before int32
		if present {
			before = 1
			if len(t.dupes) > 0 {
				if n, shared := t.dupes[e]; shared {
					before = n
				}
			}
		}
		after := before + int32(na) - int32(nr)
		if after < 0 {
			panic("churn: internal: holder count below zero")
		}
		if after >= 2 {
			t.dupes[e] = after
		} else if before >= 2 {
			delete(t.dupes, e)
		}
		if after > 0 {
			out = append(out, e)
		}
		if before == 0 && after > 0 {
			born = append(born, e)
		} else if before > 0 && after == 0 {
			died = append(died, e)
		}
	}
	out = append(out, base[i:]...)
	d := &census.Delta{Protocol: protocol, FromMonth: from, ToMonth: from + 1, Born: born, Died: died}
	next := census.NewSnapshotSorted(protocol, from+1, out, false)
	t.snap = next
	return d, next
}

// StepDeltas advances every population by one month — the exact same
// evolution as Step — and returns the per-protocol census deltas the
// step produced; DeltaSnapshot serves the matching post-step snapshots
// without further work. The first call indexes the current
// populations; an intervening plain Step discards that index (its
// changes go unrecorded), so the next StepDeltas re-indexes.
func (s *Simulator) StepDeltas() map[string]*census.Delta {
	if s.trackers == nil {
		s.trackers = make(map[string]*tracker, len(s.u.Pops))
		for _, name := range s.u.Protocols() {
			s.trackers[name] = newTracker(s.u.Pops[name], s.ExtractSnapshot(name))
		}
		s.recs = make([][]addrChange, DefaultStripes)
	}
	s.month++
	out := make(map[string]*census.Delta, len(s.u.Pops))
	for _, name := range s.u.Protocols() {
		pop := s.u.Pops[name]
		s.frozen = freezeDonors(pop, s.frozen)
		for i := range s.recs {
			s.recs[i] = s.recs[i][:0]
		}
		stepPop(s.u, pop, topo.ProtoSeed(s.seed, name), s.month, s.Workers, s.frozen, s.recs)
		out[name], _ = s.trackers[name].delta(name, s.month-1, s.recs)
	}
	return out
}

// DeltaSnapshot returns the current snapshot of one protocol as
// maintained by the StepDeltas pipeline — the month-(Month()) census
// the deltas add up to, shared, not recomputed. It returns nil before
// the first StepDeltas (or after a plain Step discarded the tracker);
// use Snapshot or ExtractSnapshot there.
func (s *Simulator) DeltaSnapshot(protocol string) *census.Snapshot {
	trk := s.trackers[protocol]
	if trk == nil {
		return nil
	}
	return trk.snap
}

// ExtractSnapshot is Snapshot with the extraction arena owned by the
// simulator and reused across months: one exact-size allocation per
// call instead of two full-population ones. Unlike Snapshot it is not
// safe for concurrent calls.
func (s *Simulator) ExtractSnapshot(protocol string) *census.Snapshot {
	if s.ex == nil {
		s.ex = make(map[string]*extractor)
	}
	e := s.ex[protocol]
	if e == nil {
		e = &extractor{}
		s.ex[protocol] = e
	}
	return e.snapshot(s.u.Pops[protocol], protocol, s.month, false)
}
