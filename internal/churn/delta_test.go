package churn

import (
	"slices"
	"testing"

	"github.com/tass-scan/tass/internal/census"
)

// TestIncrementalGoldenEquality is the delta-pipeline half of the
// stripe determinism contract: the incremental path (native deltas,
// snapshots derived by ApplyDelta) produces a series byte-identical to
// the full re-extract path, for seeds 1–3 and workers 1/2/8.
func TestIncrementalGoldenEquality(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ref := RunSim(testUniverse(t, seed), seed+10, 3, RunConfig{Workers: 1})
		for _, workers := range []int{1, 2, 8} {
			got, deltas := RunSimDeltas(testUniverse(t, seed), seed+10, 3, RunConfig{Workers: workers})
			if len(got) != len(ref) {
				t.Fatalf("seed %d workers %d: %d protocols, want %d", seed, workers, len(got), len(ref))
			}
			for name, rs := range ref {
				gs := got[name]
				if gs.Months() != rs.Months() {
					t.Fatalf("seed %d workers %d %s: months %d vs %d", seed, workers, name, gs.Months(), rs.Months())
				}
				for m := 0; m < rs.Months(); m++ {
					if !slices.Equal(gs.At(m).Addrs, rs.At(m).Addrs) {
						t.Fatalf("seed %d workers %d %s month %d: incremental series diverged",
							seed, workers, name, m)
					}
				}
				// The emitted deltas must equal the merge-walk diff of the
				// reference snapshots.
				if len(deltas[name]) != rs.Months()-1 {
					t.Fatalf("seed %d workers %d %s: %d deltas for %d months",
						seed, workers, name, len(deltas[name]), rs.Months())
				}
				for m, d := range deltas[name] {
					want := rs.At(m).Diff(rs.At(m + 1))
					if !slices.Equal(d.Born, want.Born) || !slices.Equal(d.Died, want.Died) {
						t.Fatalf("seed %d workers %d %s month %d->%d: native delta diverges from Diff",
							seed, workers, name, m, m+1)
					}
					if d.FromMonth != m || d.ToMonth != m+1 || d.Protocol != name {
						t.Fatalf("delta header %+v", d)
					}
				}
			}
		}
	}
}

// TestStepDeltasMatchesStep pins the Simulator-level API: StepDeltas
// advances the world exactly like Step and its deltas connect the
// snapshots of consecutive months.
func TestStepDeltasMatchesStep(t *testing.T) {
	ref := New(testUniverse(t, 41), 7)
	inc := New(testUniverse(t, 41), 7)
	inc.Workers = 4
	prev := map[string]*census.Snapshot{}
	for _, name := range ref.u.Protocols() {
		prev[name] = inc.ExtractSnapshot(name)
	}
	for m := 1; m <= 3; m++ {
		ref.Step()
		deltas := inc.StepDeltas()
		for _, name := range ref.u.Protocols() {
			want := ref.Snapshot(name)
			next, err := census.ApplyDelta(prev[name], deltas[name])
			if err != nil {
				t.Fatalf("month %d %s: %v", m, name, err)
			}
			if !slices.Equal(next.Addrs, want.Addrs) {
				t.Fatalf("month %d %s: delta-derived snapshot diverges from Step", m, name)
			}
			if got := inc.ExtractSnapshot(name); !slices.Equal(got.Addrs, want.Addrs) {
				t.Fatalf("month %d %s: ExtractSnapshot diverges from Snapshot", m, name)
			}
			prev[name] = next
		}
	}
}
