// Package churn evolves the host populations of a synthetic universe
// month by month, reproducing the three churn processes behind the TASS
// paper's temporal results:
//
//  1. Dynamic addressing: a protocol-dependent share of hosts re-rolls
//     its address every month, almost always inside the same announced
//     prefix. This is what collapses address hitlists (Figure 5) while
//     leaving prefix selections nearly intact (Figure 6).
//  2. Population turnover: hosts die and are replaced; most births land
//     near existing population mass, a small background lands uniformly
//     in the announced space and seeds previously-empty prefixes.
//  3. Re-homing: a small share of hosts moves to an unrelated announced
//     address (provider change), the dominant cause of the slow
//     0.3–0.7 %/month decay of TASS accuracy.
package churn

import (
	"math/rand"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/par"
	"github.com/tass-scan/tass/internal/topo"
)

// Simulator advances the populations of one universe. Every protocol
// evolves on its own topo.ProtoSeed RNG stream, so with the same universe
// and seed the produced series is deterministic and independent of the
// order (or concurrency) in which populations are stepped.
type Simulator struct {
	u     *topo.Universe
	rngs  map[string]*rand.Rand
	month int
}

// New returns a simulator for u seeded with seed.
func New(u *topo.Universe, seed int64) *Simulator {
	rngs := make(map[string]*rand.Rand, len(u.Pops))
	for _, name := range u.Protocols() {
		rngs[name] = rand.New(rand.NewSource(topo.ProtoSeed(seed, name)))
	}
	return &Simulator{u: u, rngs: rngs}
}

// Month returns the number of Step calls so far.
func (s *Simulator) Month() int { return s.month }

// Step advances every population by one month.
func (s *Simulator) Step() {
	for _, name := range s.u.Protocols() {
		stepPop(s.u, s.u.Pops[name], s.rngs[name])
	}
	s.month++
}

// stepPop advances one population by one month. It mutates only pop and
// rng; the universe is read-only, so distinct populations may be stepped
// concurrently.
func stepPop(u *topo.Universe, pop *topo.Population, rng *rand.Rand) {
	prof := &pop.Profile
	hosts := pop.Hosts
	for i := range hosts {
		h := &hosts[i]
		r := rng.Float64()
		switch {
		case r < prof.DeathRate:
			// Death with immediate replacement (stationary population).
			if rng.Float64() < prof.BirthBackground {
				// Background birth: uniform over the announced space.
				addr := u.RandomAnnouncedAddr(rng)
				lidx, _ := u.LPrefixOf(addr)
				h.Addr = addr
				h.LIdx = int32(lidx)
			} else {
				// Mass-proportional birth: same prefix as a random
				// existing host, placed like an original resident.
				j := rng.Intn(len(hosts))
				lidx := int(hosts[j].LIdx)
				h.Addr = u.PlaceHostAddr(rng, lidx, prof)
				h.LIdx = int32(lidx)
			}
			h.Dynamic = rng.Float64() < prof.DynamicShare

		case r < prof.DeathRate+prof.MoveRate:
			// Re-homing. A share of movers lands in cold space (prefixes
			// that hosted nothing at seed time — new deployments), the
			// rest uniformly in the announced space.
			if rng.Float64() < prof.MoveColdShare {
				if addr, lidx, ok := u.RandomColdAddr(rng, pop); ok {
					h.Addr = addr
					h.LIdx = int32(lidx)
					break
				}
			}
			addr := u.RandomAnnouncedAddr(rng)
			lidx, _ := u.LPrefixOf(addr)
			h.Addr = addr
			h.LIdx = int32(lidx)

		default:
			if !h.Dynamic {
				break
			}
			// Dynamic re-roll inside the current prefix. With
			// probability MLocality the new lease stays inside the same
			// m-partition piece; otherwise anywhere in the l-prefix.
			if rng.Float64() < prof.MLocality {
				if mi, ok := u.More.Find(h.Addr); ok {
					h.Addr = topo.RandomAddrIn(rng, u.More.Prefix(mi))
					break
				}
			}
			h.Addr = topo.RandomAddrIn(rng, u.Less.Prefix(int(h.LIdx)))
		}
	}
}

// Snapshot captures the current state of one protocol as a census
// snapshot labeled with the current month.
func (s *Simulator) Snapshot(protocol string) *census.Snapshot {
	return snapshot(s.u.Pops[protocol], protocol, s.month)
}

// snapshot freezes one population as a census snapshot.
func snapshot(pop *topo.Population, protocol string, month int) *census.Snapshot {
	return &census.Snapshot{
		Protocol: protocol,
		Month:    month,
		Addrs:    pop.Addresses(),
	}
}

// Run generates a monthly series of months+1 snapshots per protocol
// (months 0..months), evolving the universe in place. It is
// RunWorkers with a single worker; both produce identical series.
func Run(u *topo.Universe, seed int64, months int) map[string]*census.Series {
	return RunWorkers(u, seed, months, 1)
}

// RunWorkers is Run with the per-protocol evolution fanned out over up
// to workers goroutines (0 means GOMAXPROCS). Every protocol owns its
// population and its topo.ProtoSeed RNG stream, so the output is
// byte-identical at any worker count.
func RunWorkers(u *topo.Universe, seed int64, months, workers int) map[string]*census.Series {
	names := u.Protocols()
	series := make([]*census.Series, len(names))
	par.ForEach(len(names), workers, func(ni int) {
		name := names[ni]
		pop := u.Pops[name]
		rng := rand.New(rand.NewSource(topo.ProtoSeed(seed, name)))
		s := &census.Series{Protocol: name}
		for m := 0; m <= months; m++ {
			if m > 0 {
				stepPop(u, pop, rng)
			}
			s.Snapshots = append(s.Snapshots, snapshot(pop, name, m))
		}
		series[ni] = s
	})
	out := make(map[string]*census.Series, len(names))
	for ni, name := range names {
		out[name] = series[ni]
	}
	return out
}
