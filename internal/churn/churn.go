// Package churn evolves the host populations of a synthetic universe
// month by month, reproducing the three churn processes behind the TASS
// paper's temporal results:
//
//  1. Dynamic addressing: a protocol-dependent share of hosts re-rolls
//     its address every month, almost always inside the same announced
//     prefix. This is what collapses address hitlists (Figure 5) while
//     leaving prefix selections nearly intact (Figure 6).
//  2. Population turnover: hosts die and are replaced; most births land
//     near existing population mass, a small background lands uniformly
//     in the announced space and seeds previously-empty prefixes.
//  3. Re-homing: a small share of hosts moves to an unrelated announced
//     address (provider change), the dominant cause of the slow
//     0.3–0.7 %/month decay of TASS accuracy.
//
// # Striped determinism
//
// Every population is partitioned into DefaultStripes contiguous host
// stripes, and every (protocol, stripe, month) triple owns its own RNG
// substream derived with topo.MixSeed from the protocol's
// topo.ProtoSeed lane. Stripes mutate only their own hosts and read
// shared state that is frozen for the month (the universe, and the
// start-of-month donor index for mass-proportional births), so they
// are order-independent: the simulated series is a pure function of
// (universe, seed, months) and byte-identical at every worker count.
// The stripe count and substream derivation are part of that
// determinism contract and must not change.
package churn

import (
	"runtime"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/par"
	"github.com/tass-scan/tass/internal/topo"
)

// DefaultStripes is the fixed number of RNG substreams each population
// is split into per month. It is deliberately independent of the
// worker count (so results never depend on -workers) and a good deal
// larger than any realistic core count (so the intra-protocol fan-out
// keeps every core busy even when one protocol dominates the month).
const DefaultStripes = 64

// RunConfig parameterizes a simulation run beyond the universe and
// seed. The zero value is a serial run producing lazily-indexed
// snapshots.
type RunConfig struct {
	// Workers bounds the goroutines used across protocols and stripes
	// (0 means GOMAXPROCS). Any value produces byte-identical series.
	Workers int
	// PrebuildSets builds each snapshot's block-indexed Set() view
	// eagerly during extraction instead of lazily on first use. The
	// series is byte-identical either way; prebuilding front-loads the
	// encode pass, which pays off when most snapshots are counted
	// through the set index afterwards (paper-scale experiment runs).
	PrebuildSets bool
	// Incremental derives every post-seed snapshot from its
	// predecessor through a native census.Delta emitted by the churn
	// step itself (see delta.go), instead of re-extracting and
	// re-sorting the full population each month. The series is
	// byte-identical either way; the incremental path wins when the
	// monthly churn is a small share of the population.
	Incremental bool
}

// Simulator advances the populations of one universe in place. Every
// (protocol, stripe, month) triple evolves on its own derived RNG
// substream, so with the same universe and seed the produced series is
// deterministic and independent of the order (or concurrency) in which
// populations and stripes are stepped.
type Simulator struct {
	// Workers bounds the goroutines used per Step (0 means GOMAXPROCS).
	// The evolution is byte-identical at any value.
	Workers int

	u      *topo.Universe
	seed   int64
	month  int
	frozen []int32 // reusable start-of-month donor index

	trackers map[string]*tracker   // per-protocol refcounts for StepDeltas
	recs     [][]addrChange        // reusable per-stripe change records
	ex       map[string]*extractor // per-protocol arenas for ExtractSnapshot
}

// New returns a simulator for u seeded with seed.
func New(u *topo.Universe, seed int64) *Simulator {
	return &Simulator{u: u, seed: seed}
}

// Month returns the number of Step calls so far.
func (s *Simulator) Month() int { return s.month }

// Step advances every population by one month. It does not record
// address changes, so any delta trackers built by StepDeltas are
// discarded — the next StepDeltas re-indexes the populations.
func (s *Simulator) Step() {
	s.trackers = nil
	s.month++
	for _, name := range s.u.Protocols() {
		pop := s.u.Pops[name]
		s.frozen = freezeDonors(pop, s.frozen)
		stepPop(s.u, pop, topo.ProtoSeed(s.seed, name), s.month, s.Workers, s.frozen, nil)
	}
}

// Snapshot captures the current state of one protocol as a census
// snapshot labeled with the current month. Each call uses its own
// scratch, so concurrent Snapshot calls are safe (Step is not).
func (s *Simulator) Snapshot(protocol string) *census.Snapshot {
	var ex extractor
	return ex.snapshot(s.u.Pops[protocol], protocol, s.month, false)
}

// freezeDonors records the start-of-month l-prefix index of every host
// into buf (grown as needed) and returns it. Mass-proportional births
// sample donors from this frozen view, never from mid-month mutated
// hosts, so the birth distribution is identical no matter which stripes
// have already stepped.
func freezeDonors(pop *topo.Population, buf []int32) []int32 {
	hosts := pop.Hosts
	if cap(buf) < len(hosts) {
		buf = make([]int32, len(hosts))
	}
	buf = buf[:len(hosts)]
	for i := range hosts {
		buf[i] = hosts[i].LIdx
	}
	return buf
}

// stepPop advances one population by one month, fanning the host walk
// out over DefaultStripes substreams on up to workers goroutines. It
// mutates only pop; the universe and the frozen donor index are
// read-only, and each stripe writes only its own host range, so
// distinct populations and stripes may be stepped concurrently. When
// recs is non-nil it must hold one slot per stripe; each stripe
// appends its (old, new) address changes to its own slot, so recording
// never synchronizes and the recorded set is independent of the worker
// count.
func stepPop(u *topo.Universe, pop *topo.Population, protoSeed int64, month, workers int, donors []int32, recs [][]addrChange) {
	hosts := pop.Hosts
	n := len(hosts)
	if n == 0 {
		return
	}
	chunk := (n + DefaultStripes - 1) / DefaultStripes
	par.ForEachChunk(n, workers, chunk, func(lo, hi int) {
		stripe := lo / chunk
		rng := topo.NewRNG(topo.MixSeed(protoSeed, uint64(stripe), uint64(month)))
		var rec *[]addrChange
		if recs != nil {
			rec = &recs[stripe]
		}
		stepHosts(u, pop, hosts[lo:hi], donors, rng, rec)
	})
}

// stepHosts walks one stripe of hosts on its own substream, appending
// every host's address change to rec when recording is on. The RNG
// schedule is identical with and without recording — delta emission
// must never change the simulated series.
func stepHosts(u *topo.Universe, pop *topo.Population, hosts []topo.Host, donors []int32, rng *topo.RNG, rec *[]addrChange) {
	prof := &pop.Profile
	// Hoist the two branch thresholds every host compares against; the
	// rest of the profile is only read on the rare churn branches.
	deathRate := prof.DeathRate
	moveEnd := prof.DeathRate + prof.MoveRate
	for i := range hosts {
		h := &hosts[i]
		old := h.Addr
		r := rng.Float64()
		switch {
		case r < deathRate:
			// Death with immediate replacement (stationary population).
			if rng.Float64() < prof.BirthBackground {
				// Background birth: uniform over the announced space.
				addr := u.RandomAnnouncedAddr(rng)
				lidx, _ := u.LPrefixOf(addr)
				h.Addr = addr
				h.LIdx = int32(lidx)
			} else {
				// Mass-proportional birth: same prefix as a random host
				// of the frozen start-of-month population, placed like
				// an original resident.
				lidx := int(donors[rng.Intn(len(donors))])
				h.Addr = u.PlaceHostAddr(rng, lidx, prof)
				h.LIdx = int32(lidx)
			}
			h.Dynamic = rng.Float64() < prof.DynamicShare

		case r < moveEnd:
			// Re-homing. A share of movers lands in cold space (prefixes
			// that hosted nothing at seed time — new deployments), the
			// rest uniformly in the announced space.
			if rng.Float64() < prof.MoveColdShare {
				if addr, lidx, ok := u.RandomColdAddr(rng, pop); ok {
					h.Addr = addr
					h.LIdx = int32(lidx)
					break
				}
			}
			addr := u.RandomAnnouncedAddr(rng)
			lidx, _ := u.LPrefixOf(addr)
			h.Addr = addr
			h.LIdx = int32(lidx)

		default:
			if !h.Dynamic {
				break
			}
			// Dynamic re-roll inside the current prefix. With
			// probability MLocality the new lease stays inside the same
			// m-partition piece; otherwise anywhere in the l-prefix.
			if rng.Float64() < prof.MLocality {
				if mi, ok := u.More.Find(h.Addr); ok {
					h.Addr = topo.RandomAddrIn(rng, u.More.Prefix(mi))
					break
				}
			}
			h.Addr = topo.RandomAddrIn(rng, u.Less.Prefix(int(h.LIdx)))
		}
		if rec != nil && h.Addr != old {
			*rec = append(*rec, addrChange{from: old, to: h.Addr})
		}
	}
}

// extractor holds the per-protocol snapshot-extraction arena reused
// across months: the gather buffer addresses are collected and sorted
// in, the radix-sort scratch, and (for the incremental path) the
// previous month's state. Only the final deduplicated address slice of
// each snapshot is freshly allocated — it has to outlive the month —
// and it is exactly sized, so extraction does one tight allocation per
// snapshot instead of two full-population ones plus the sort's.
type extractor struct {
	gather  []netaddr.Addr
	scratch []netaddr.Addr
}

// snapshot freezes one population as a census snapshot: exactly what a
// full scan at this instant would report (sorted, de-duplicated — two
// hosts on one address answer as one). Every call re-sorts the full
// population: an incremental diff-and-merge against the previous month
// was tried and measured slower — the branchless LSD radix re-sort
// beats sorting the ~25 % changed minority plus a branchy (and
// mispredict-heavy) merge walk over all N.
func (e *extractor) snapshot(pop *topo.Population, protocol string, month int, prebuildSet bool) *census.Snapshot {
	hosts := pop.Hosts
	n := len(hosts)
	if cap(e.gather) < n {
		e.gather = make([]netaddr.Addr, n)
		e.scratch = make([]netaddr.Addr, n)
	}
	buf := e.gather[:n]
	for i := range hosts {
		buf[i] = hosts[i].Addr
	}
	census.SortAddrsScratch(buf, e.scratch[:n])
	return dedupAlloc(buf, protocol, month, prebuildSet)
}

// dedupAlloc copies the sorted multiset buf into an exactly-sized,
// duplicate-free fresh slice (buf is left untouched) and wraps it as a
// snapshot.
func dedupAlloc(buf []netaddr.Addr, protocol string, month int, prebuildSet bool) *census.Snapshot {
	w := 0
	for i, a := range buf {
		if i > 0 && buf[i-1] == a {
			continue
		}
		w++
	}
	out := make([]netaddr.Addr, 0, w)
	for i, a := range buf {
		if i > 0 && buf[i-1] == a {
			continue
		}
		out = append(out, a)
	}
	return census.NewSnapshotSorted(protocol, month, out, prebuildSet)
}

// Run generates a monthly series of months+1 snapshots per protocol
// (months 0..months), evolving the universe in place. It is RunSim
// with a single worker; every configuration produces identical series.
func Run(u *topo.Universe, seed int64, months int) map[string]*census.Series {
	return RunSim(u, seed, months, RunConfig{Workers: 1})
}

// RunWorkers is Run with the evolution fanned out over up to workers
// goroutines (0 means GOMAXPROCS).
func RunWorkers(u *topo.Universe, seed int64, months, workers int) map[string]*census.Series {
	return RunSim(u, seed, months, RunConfig{Workers: workers})
}

// RunSim generates a monthly series of months+1 snapshots per protocol
// (months 0..months), evolving the universe in place. The worker
// budget is split between a per-protocol fan-out and the per-stripe
// fan-out inside each protocol, so single-protocol universes still
// scale; the output is byte-identical at any RunConfig.Workers and
// with or without RunConfig.Incremental.
func RunSim(u *topo.Universe, seed int64, months int, cfg RunConfig) map[string]*census.Series {
	series, _ := runSim(u, seed, months, cfg)
	return series
}

// RunSimDeltas is RunSim on the incremental path, additionally
// returning the native per-month deltas: deltas[name][m-1] carries the
// churn from month m-1 to month m, and applying it to series month m-1
// reproduces month m exactly.
func RunSimDeltas(u *topo.Universe, seed int64, months int, cfg RunConfig) (map[string]*census.Series, map[string][]*census.Delta) {
	cfg.Incremental = true
	return runSim(u, seed, months, cfg)
}

func runSim(u *topo.Universe, seed int64, months int, cfg RunConfig) (map[string]*census.Series, map[string][]*census.Delta) {
	names := u.Protocols()
	if len(names) == 0 {
		return map[string]*census.Series{}, map[string][]*census.Delta{}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := workers
	if outer > len(names) {
		outer = len(names)
	}
	// Round the inner share up so a non-dividing budget is not stranded
	// (transient overshoot < outer goroutines).
	inner := (workers + outer - 1) / outer

	series := make([]*census.Series, len(names))
	deltas := make([][]*census.Delta, len(names))
	par.ForEach(len(names), outer, func(ni int) {
		name := names[ni]
		pop := u.Pops[name]
		protoSeed := topo.ProtoSeed(seed, name)
		var frozen []int32
		s := &census.Series{Protocol: name}
		if cfg.Incremental {
			var ex extractor
			snap := ex.snapshot(pop, name, 0, cfg.PrebuildSets)
			s.Snapshots = append(s.Snapshots, snap)
			trk := newTracker(pop, snap)
			recs := make([][]addrChange, DefaultStripes)
			for m := 1; m <= months; m++ {
				frozen = freezeDonors(pop, frozen)
				for i := range recs {
					recs[i] = recs[i][:0]
				}
				stepPop(u, pop, protoSeed, m, inner, frozen, recs)
				d, next := trk.delta(name, m-1, recs)
				if cfg.PrebuildSets {
					next.Set()
				}
				s.Snapshots = append(s.Snapshots, next)
				deltas[ni] = append(deltas[ni], d)
			}
		} else {
			var ex extractor
			for m := 0; m <= months; m++ {
				if m > 0 {
					frozen = freezeDonors(pop, frozen)
					stepPop(u, pop, protoSeed, m, inner, frozen, nil)
				}
				s.Snapshots = append(s.Snapshots, ex.snapshot(pop, name, m, cfg.PrebuildSets))
			}
		}
		series[ni] = s
	})
	out := make(map[string]*census.Series, len(names))
	dout := make(map[string][]*census.Delta, len(names))
	for ni, name := range names {
		out[name] = series[ni]
		if cfg.Incremental {
			dout[name] = deltas[ni]
		}
	}
	return out, dout
}
