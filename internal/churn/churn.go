// Package churn evolves the host populations of a synthetic universe
// month by month, reproducing the three churn processes behind the TASS
// paper's temporal results:
//
//  1. Dynamic addressing: a protocol-dependent share of hosts re-rolls
//     its address every month, almost always inside the same announced
//     prefix. This is what collapses address hitlists (Figure 5) while
//     leaving prefix selections nearly intact (Figure 6).
//  2. Population turnover: hosts die and are replaced; most births land
//     near existing population mass, a small background lands uniformly
//     in the announced space and seeds previously-empty prefixes.
//  3. Re-homing: a small share of hosts moves to an unrelated announced
//     address (provider change), the dominant cause of the slow
//     0.3–0.7 %/month decay of TASS accuracy.
package churn

import (
	"math/rand"

	"github.com/tass-scan/tass/internal/census"
	"github.com/tass-scan/tass/internal/topo"
)

// Simulator advances the populations of one universe. It owns its RNG;
// with the same universe and seed the produced series is deterministic.
type Simulator struct {
	u     *topo.Universe
	rng   *rand.Rand
	month int
}

// New returns a simulator for u seeded with seed.
func New(u *topo.Universe, seed int64) *Simulator {
	return &Simulator{u: u, rng: rand.New(rand.NewSource(seed))}
}

// Month returns the number of Step calls so far.
func (s *Simulator) Month() int { return s.month }

// Step advances every population by one month.
func (s *Simulator) Step() {
	for _, name := range s.u.Protocols() {
		s.stepPop(s.u.Pops[name])
	}
	s.month++
}

func (s *Simulator) stepPop(pop *topo.Population) {
	prof := &pop.Profile
	hosts := pop.Hosts
	rng := s.rng
	for i := range hosts {
		h := &hosts[i]
		r := rng.Float64()
		switch {
		case r < prof.DeathRate:
			// Death with immediate replacement (stationary population).
			if rng.Float64() < prof.BirthBackground {
				// Background birth: uniform over the announced space.
				addr := s.u.RandomAnnouncedAddr(rng)
				lidx, _ := s.u.LPrefixOf(addr)
				h.Addr = addr
				h.LIdx = int32(lidx)
			} else {
				// Mass-proportional birth: same prefix as a random
				// existing host, placed like an original resident.
				j := rng.Intn(len(hosts))
				lidx := int(hosts[j].LIdx)
				h.Addr = s.u.PlaceHostAddr(rng, lidx, prof)
				h.LIdx = int32(lidx)
			}
			h.Dynamic = rng.Float64() < prof.DynamicShare

		case r < prof.DeathRate+prof.MoveRate:
			// Re-homing. A share of movers lands in cold space (prefixes
			// that hosted nothing at seed time — new deployments), the
			// rest uniformly in the announced space.
			if rng.Float64() < prof.MoveColdShare {
				if addr, lidx, ok := s.u.RandomColdAddr(rng, pop); ok {
					h.Addr = addr
					h.LIdx = int32(lidx)
					break
				}
			}
			addr := s.u.RandomAnnouncedAddr(rng)
			lidx, _ := s.u.LPrefixOf(addr)
			h.Addr = addr
			h.LIdx = int32(lidx)

		default:
			if !h.Dynamic {
				break
			}
			// Dynamic re-roll inside the current prefix. With
			// probability MLocality the new lease stays inside the same
			// m-partition piece; otherwise anywhere in the l-prefix.
			if rng.Float64() < prof.MLocality {
				if mi, ok := s.u.More.Find(h.Addr); ok {
					h.Addr = topo.RandomAddrIn(rng, s.u.More.Prefix(mi))
					break
				}
			}
			h.Addr = topo.RandomAddrIn(rng, s.u.Less.Prefix(int(h.LIdx)))
		}
	}
}

// Snapshot captures the current state of one protocol as a census
// snapshot labeled with the current month.
func (s *Simulator) Snapshot(protocol string) *census.Snapshot {
	pop := s.u.Pops[protocol]
	return &census.Snapshot{
		Protocol: protocol,
		Month:    s.month,
		Addrs:    pop.Addresses(),
	}
}

// Run generates a monthly series of months+1 snapshots per protocol
// (months 0..months), evolving the universe in place.
func Run(u *topo.Universe, seed int64, months int) map[string]*census.Series {
	sim := New(u, seed)
	out := make(map[string]*census.Series, len(u.Pops))
	for _, name := range u.Protocols() {
		out[name] = &census.Series{Protocol: name}
	}
	for m := 0; m <= months; m++ {
		if m > 0 {
			sim.Step()
		}
		for _, name := range u.Protocols() {
			snap := sim.Snapshot(name)
			out[name].Snapshots = append(out[name].Snapshots, snap)
		}
	}
	return out
}
