package mmapfile

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeTemp(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "payload")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testExtents(t *testing.T, m *File, content []byte) {
	t.Helper()
	if m.Size() != int64(len(content)) {
		t.Fatalf("Size = %d want %d", m.Size(), len(content))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		off := rng.Intn(len(content) + 1)
		n := rng.Intn(len(content) - off + 1)
		if got := m.Bytes(off, n); !bytes.Equal(got, content[off:off+n]) {
			t.Fatalf("Bytes(%d, %d) mismatch", off, n)
		}
	}
	// Concurrent readers over overlapping extents.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				off := rng.Intn(len(content))
				n := rng.Intn(len(content) - off)
				if !bytes.Equal(m.Bytes(off, n), content[off:off+n]) {
					t.Errorf("concurrent Bytes(%d, %d) mismatch", off, n)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestOpenMapped(t *testing.T) {
	content := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(content)
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	testExtents(t, m, content)
}

func TestOpenFallback(t *testing.T) {
	DisableMmap = true
	defer func() { DisableMmap = false }()
	content := make([]byte, 1<<14)
	rand.New(rand.NewSource(2)).Read(content)
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Fatal("fallback File reports Mapped")
	}
	testExtents(t, m, content)
}

func TestOpenEmpty(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Size() != 0 {
		t.Fatalf("Size = %d", m.Size())
	}
	if got := m.Bytes(0, 0); len(got) != 0 {
		t.Fatalf("Bytes(0,0) returned %d bytes", len(got))
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
}

func TestBytesOutOfRange(t *testing.T) {
	m, err := Open(writeTemp(t, []byte("abc")))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, c := range [][2]int{{0, 4}, {3, 1}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes(%d, %d) did not panic", c[0], c[1])
				}
			}()
			m.Bytes(c[0], c[1])
		}()
	}
}

func TestCloseInvalidates(t *testing.T) {
	m, err := Open(writeTemp(t, []byte("abcdef")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Log("double Close did not error (ok on some platforms)")
	}
}
