//go:build !unix

package mmapfile

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("mmapfile: no mmap on this platform")

func mmap(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmap(data []byte) error { return nil }
