// Package mmapfile opens a file for random read access, memory-mapping
// it read-only where the platform allows and degrading to pread
// elsewhere. It is the bottom of the lazy census stack: the TASSNAP2
// codec maps a snapshot file once and serves block extents from the
// mapping, so opening a multi-gigabyte census costs page-table setup,
// not a read of the payload — the kernel pages blocks in as the set
// faults them and pages them out again under memory pressure.
//
// Callers must treat returned byte slices as immutable, and must not
// modify the underlying file while a File is open.
package mmapfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// File is a read-only file with random extent access. It is safe for
// concurrent use.
type File struct {
	f      *os.File
	ra     io.ReaderAt // pread source; f unless a test swapped it
	size   int64
	data   []byte // whole-file mapping; nil when running on pread
	mapped bool
}

// DisableMmap forces every subsequent Open onto the pread fallback.
// The lazy census stack behaves identically either way (just without
// zero-copy extents); the knob exists for tests exercising the
// fallback and for diagnosing platform mmap issues. Set it before
// opening files — it is not synchronized with concurrent Opens.
var DisableMmap = false

// Open opens path read-only. On platforms with mmap the whole file is
// mapped; anywhere else (or if the mapping fails, e.g. on exotic
// filesystems) the File transparently serves extents with pread.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	m := &File{f: f, ra: f, size: st.Size()}
	if m.size > 0 && !DisableMmap {
		if data, err := mmap(f, int(m.size)); err == nil {
			m.data = data
			m.mapped = true
		}
	}
	return m, nil
}

// Mapped reports whether extents are served from a memory mapping
// (false means the pread fallback is active).
func (m *File) Mapped() bool { return m.mapped }

// Size returns the file size at open time.
func (m *File) Size() int64 { return m.size }

// BytesAt returns the file bytes [off, off+n). Mapped files return a
// zero-copy subslice of the mapping; the fallback preads into a fresh
// slice. Out-of-range extents and fallback read failures return an
// error; transient pread faults (EINTR, a short read racing a signal)
// are retried once before the error is surfaced, so a single
// interrupted syscall never poisons a long counting pass.
func (m *File) BytesAt(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || int64(off)+int64(n) > m.size {
		return nil, fmt.Errorf("mmapfile: extent [%d,%d) outside file of %d bytes", off, off+n, m.size)
	}
	if m.mapped {
		return m.data[off : off+n], nil
	}
	buf := make([]byte, n)
	read, err := m.ra.ReadAt(buf, int64(off))
	if err != nil && retryableRead(read, n, err) {
		read, err = m.ra.ReadAt(buf, int64(off))
	}
	if err != nil {
		return nil, fmt.Errorf("mmapfile: pread %d bytes at %d: %w", n, off, err)
	}
	if read < n {
		return nil, fmt.Errorf("mmapfile: pread %d bytes at %d: short read (%d)", n, off, read)
	}
	return buf, nil
}

// retryableRead reports whether a failed pread is worth one retry: an
// interrupted syscall, or a short read that still signalled progress
// (io.ErrUnexpectedEOF from a racing truncate-and-regrow, a driver
// returning early). A zero-progress io.EOF is not retried — the file
// really ended.
func retryableRead(read, want int, err error) bool {
	if errors.Is(err, syscall.EINTR) {
		return true
	}
	return read > 0 && read < want && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF))
}

// Bytes returns the file bytes [off, off+n), panicking on failure. It
// is the legacy accessor for callers whose extents were validated
// against the file's directory at open, where a failure means the file
// changed or vanished underneath us (the moral equivalent of an mmap
// SIGBUS). New code should use BytesAt and propagate the error.
func (m *File) Bytes(off, n int) []byte {
	b, err := m.BytesAt(off, n)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// Close unmaps and closes the file. Slices previously returned by Bytes
// on a mapped File become invalid.
func (m *File) Close() error {
	var err error
	if m.mapped {
		err = munmap(m.data)
		m.data = nil
		m.mapped = false
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}
