//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

func mmap(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
