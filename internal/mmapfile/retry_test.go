package mmapfile

import (
	"bytes"
	"errors"
	"io"
	"syscall"
	"testing"

	"github.com/tass-scan/tass/internal/faultfs"
)

// openFallback opens path on the pread path and swaps its reader for a
// scripted flaky one.
func openFallback(t *testing.T, content []byte, faults map[int]faultfs.ReadFault) (*File, *faultfs.FlakyReaderAt) {
	t.Helper()
	defer func(v bool) { DisableMmap = v }(DisableMmap)
	DisableMmap = true
	m, err := Open(writeTemp(t, content))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	if m.Mapped() {
		t.Fatal("fallback file came back mapped")
	}
	flaky := &faultfs.FlakyReaderAt{R: m.ra, Faults: faults}
	m.ra = flaky
	return m, flaky
}

func TestBytesAtRetriesEINTR(t *testing.T) {
	content := []byte("the quick brown fox jumps over the lazy dog")
	m, flaky := openFallback(t, content, map[int]faultfs.ReadFault{
		1: {Err: syscall.EINTR},
	})
	got, err := m.BytesAt(4, 11)
	if err != nil {
		t.Fatalf("BytesAt after EINTR: %v", err)
	}
	if !bytes.Equal(got, content[4:15]) {
		t.Fatalf("BytesAt = %q", got)
	}
	if flaky.Calls() != 2 {
		t.Fatalf("%d ReadAt calls, want 2 (one retry)", flaky.Calls())
	}
}

func TestBytesAtRetriesShortRead(t *testing.T) {
	content := []byte("0123456789abcdef")
	m, flaky := openFallback(t, content, map[int]faultfs.ReadFault{
		1: {Short: 3, Err: io.ErrUnexpectedEOF},
	})
	got, err := m.BytesAt(0, 10)
	if err != nil {
		t.Fatalf("BytesAt after short read: %v", err)
	}
	if !bytes.Equal(got, content[:10]) {
		t.Fatalf("BytesAt = %q", got)
	}
	if flaky.Calls() != 2 {
		t.Fatalf("%d ReadAt calls, want 2 (one retry)", flaky.Calls())
	}
}

func TestBytesAtPersistentFaultSurfaces(t *testing.T) {
	content := []byte("0123456789")
	m, flaky := openFallback(t, content, map[int]faultfs.ReadFault{
		1: {Err: syscall.EIO},
		2: {Err: syscall.EIO},
	})
	if _, err := m.BytesAt(0, 5); !errors.Is(err, syscall.EIO) {
		t.Fatalf("persistent EIO not surfaced: %v", err)
	}
	// EIO is not retryable: exactly one call, no blind retry loop.
	if flaky.Calls() != 1 {
		t.Fatalf("%d ReadAt calls for non-retryable fault, want 1", flaky.Calls())
	}
	m2, flaky2 := openFallback(t, content, map[int]faultfs.ReadFault{
		1: {Err: syscall.EINTR},
		2: {Err: syscall.EINTR},
	})
	if _, err := m2.BytesAt(0, 5); err == nil {
		t.Fatal("double EINTR slipped through")
	}
	// Retried once, then surfaced — never a retry storm.
	if flaky2.Calls() != 2 {
		t.Fatalf("%d ReadAt calls, want 2", flaky2.Calls())
	}
}

func TestBytesAtZeroProgressEOFNotRetried(t *testing.T) {
	content := []byte("0123456789")
	m, flaky := openFallback(t, content, map[int]faultfs.ReadFault{
		1: {Err: io.EOF},
	})
	if _, err := m.BytesAt(0, 5); err == nil {
		t.Fatal("zero-progress EOF produced bytes")
	}
	if flaky.Calls() != 1 {
		t.Fatalf("%d ReadAt calls, want 1 (EOF without progress is final)", flaky.Calls())
	}
}
