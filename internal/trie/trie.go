// Package trie implements a binary radix trie keyed by CIDR prefixes,
// plus the prefix-set operations the TASS paper builds on: longest-prefix
// match, covered-set queries, the less-specific (l-prefix) filter, and
// the deaggregation of less-specific prefixes around their announced
// more-specifics (Figure 2 of the paper).
//
// The trie is generic over the address family (TrieOf); Trie is the
// IPv4 instantiation. It is a path-uncompressed binary trie: simple,
// allocation-friendly and fast enough for full-table workloads (~600 k
// announced prefixes). Nodes without values are interior branch points.
package trie

import (
	"github.com/tass-scan/tass/internal/netaddr"
)

// TrieOf maps prefixes of address family A to values of type V.
// The zero value is an empty trie ready for use.
type TrieOf[A netaddr.Key[A], V any] struct {
	root *node[A, V]
	size int

	// slab hands out nodes from doubling arena blocks instead of one
	// heap object per trie level: building a full announced table
	// touches hundreds of thousands of interior nodes, and the
	// per-node mallocs dominated the allocation profile of universe
	// generation. Nodes are never freed individually (Delete only
	// clears values), so arena blocks — kept alive by the node
	// pointers themselves — are safe.
	slab []node[A, V]
}

// Trie is the IPv4 instantiation of TrieOf.
type Trie[V any] = TrieOf[netaddr.Addr, V]

type node[A netaddr.Key[A], V any] struct {
	child    [2]*node[A, V]
	value    V
	hasValue bool
}

// newNode hands out the next node from the current arena block,
// growing the block geometrically (256 → 64 K nodes) when exhausted.
func (t *TrieOf[A, V]) newNode() *node[A, V] {
	if len(t.slab) == cap(t.slab) {
		c := 2 * cap(t.slab)
		if c == 0 {
			c = 256
		}
		if c > 1<<16 {
			c = 1 << 16
		}
		t.slab = make([]node[A, V], 0, c)
	}
	t.slab = t.slab[:len(t.slab)+1]
	return &t.slab[len(t.slab)-1]
}

// New returns an empty IPv4 trie. Equivalent to new(Trie[V]).
func New[V any]() *Trie[V] { return &Trie[V]{} }

// NewOf returns an empty trie for any address family.
func NewOf[A netaddr.Key[A], V any]() *TrieOf[A, V] { return &TrieOf[A, V]{} }

// Len returns the number of prefixes stored in t.
func (t *TrieOf[A, V]) Len() int { return t.size }

// Insert stores value under p, replacing any existing value.
// It reports whether a previous value was replaced.
func (t *TrieOf[A, V]) Insert(p netaddr.Pfx[A], value V) (replaced bool) {
	if t.root == nil {
		t.root = t.newNode()
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := p.Bit(i)
		if n.child[b] == nil {
			n.child[b] = t.newNode()
		}
		n = n.child[b]
	}
	replaced = n.hasValue
	n.value = value
	n.hasValue = true
	if !replaced {
		t.size++
	}
	return replaced
}

// Get returns the value stored exactly under p.
func (t *TrieOf[A, V]) Get(p netaddr.Pfx[A]) (V, bool) {
	var zero V
	n := t.node(p)
	if n == nil || !n.hasValue {
		return zero, false
	}
	return n.value, true
}

// node walks to the node for p, or nil if the path does not exist.
func (t *TrieOf[A, V]) node(p netaddr.Pfx[A]) *node[A, V] {
	n := t.root
	for i := 0; i < p.Bits() && n != nil; i++ {
		n = n.child[p.Bit(i)]
	}
	return n
}

// Delete removes the value stored under p and reports whether one existed.
// Emptied interior nodes are left in place; for the workloads here
// (build once, query many) that is the right trade-off.
func (t *TrieOf[A, V]) Delete(p netaddr.Pfx[A]) bool {
	n := t.node(p)
	if n == nil || !n.hasValue {
		return false
	}
	var zero V
	n.value = zero
	n.hasValue = false
	t.size--
	return true
}

// Lookup performs a longest-prefix match for address a and returns the
// most specific stored prefix containing it.
func (t *TrieOf[A, V]) Lookup(a A) (netaddr.Pfx[A], V, bool) {
	var (
		bestP   netaddr.Pfx[A]
		bestV   V
		found   bool
		current = t.root
	)
	w := a.Width()
	pw := netaddr.MustPfxFrom(a, w)
	for i := 0; current != nil; i++ {
		if current.hasValue {
			bestP = netaddr.MustPfxFrom(a, i)
			bestV = current.value
			found = true
		}
		if i == w {
			break
		}
		current = current.child[pw.Bit(i)]
	}
	return bestP, bestV, found
}

// LookupPrefix returns the most specific stored prefix that contains q
// (possibly q itself).
func (t *TrieOf[A, V]) LookupPrefix(q netaddr.Pfx[A]) (netaddr.Pfx[A], V, bool) {
	var (
		bestP netaddr.Pfx[A]
		bestV V
		found bool
	)
	n := t.root
	for i := 0; n != nil; i++ {
		if n.hasValue {
			bestP = netaddr.MustPfxFrom(q.Addr(), i)
			bestV = n.value
			found = true
		}
		if i == q.Bits() {
			break
		}
		n = n.child[q.Bit(i)]
	}
	return bestP, bestV, found
}

// Walk visits all stored prefixes in lexicographic (address, length) order.
// Returning false from fn stops the walk early.
func (t *TrieOf[A, V]) Walk(fn func(netaddr.Pfx[A], V) bool) {
	walk(t.root, netaddr.Pfx[A]{}, fn)
}

func walk[A netaddr.Key[A], V any](n *node[A, V], at netaddr.Pfx[A], fn func(netaddr.Pfx[A], V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue && !fn(at, n.value) {
		return false
	}
	lo, hi, ok := at.Split()
	if !ok {
		return true
	}
	if !walk(n.child[0], lo, fn) {
		return false
	}
	return walk(n.child[1], hi, fn)
}

// Covered visits all stored prefixes contained in p (including p itself if
// stored), in lexicographic order. Returning false stops early.
func (t *TrieOf[A, V]) Covered(p netaddr.Pfx[A], fn func(netaddr.Pfx[A], V) bool) {
	n := t.node(p)
	walk(n, p, fn)
}

// HasStrictDescendant reports whether any stored prefix is strictly more
// specific than p (longer and contained in p).
func (t *TrieOf[A, V]) HasStrictDescendant(p netaddr.Pfx[A]) bool {
	n := t.node(p)
	if n == nil {
		return false
	}
	return subtreeHasValue(n.child[0]) || subtreeHasValue(n.child[1])
}

func subtreeHasValue[A netaddr.Key[A], V any](n *node[A, V]) bool {
	if n == nil {
		return false
	}
	if n.hasValue {
		return true
	}
	return subtreeHasValue(n.child[0]) || subtreeHasValue(n.child[1])
}

// Roots returns the maximal stored prefixes: those not contained in any
// other stored prefix. In routing terms these are the less-specific
// "l-prefixes" of the paper. The result is sorted.
func (t *TrieOf[A, V]) Roots() []netaddr.Pfx[A] {
	var out []netaddr.Pfx[A]
	var rec func(n *node[A, V], at netaddr.Pfx[A])
	rec = func(n *node[A, V], at netaddr.Pfx[A]) {
		if n == nil {
			return
		}
		if n.hasValue {
			out = append(out, at)
			return // everything below is covered
		}
		lo, hi, ok := at.Split()
		if !ok {
			return
		}
		rec(n.child[0], lo)
		rec(n.child[1], hi)
	}
	rec(t.root, netaddr.Pfx[A]{})
	return out
}

// LessSpecificOnly returns the maximal prefixes of the input set: every
// prefix contained in another input prefix is dropped. Duplicates collapse.
// This is the paper's l-prefix view of an announced table. The result is
// sorted and pairwise disjoint.
func LessSpecificOnly[A netaddr.Key[A]](prefixes []netaddr.Pfx[A]) []netaddr.Pfx[A] {
	t := NewOf[A, struct{}]()
	for _, p := range prefixes {
		t.Insert(p, struct{}{})
	}
	return t.Roots()
}

// Deaggregate computes the paper's m-prefix partition (Figure 2): every
// less-specific prefix that contains announced more-specifics is
// decomposed into (a) the announced more-specifics themselves and (b) the
// minimal set of prefixes tiling the remaining space. Prefixes with no
// announced more-specifics pass through unchanged. Nested more-specifics
// are decomposed recursively, so the result is a disjoint partition whose
// union equals the union of the input.
//
// The result is sorted by (address, length).
func Deaggregate[A netaddr.Key[A]](prefixes []netaddr.Pfx[A]) []netaddr.Pfx[A] {
	t := NewOf[A, struct{}]()
	for _, p := range prefixes {
		t.Insert(p, struct{}{})
	}
	var out []netaddr.Pfx[A]
	var rec func(n *node[A, struct{}], at netaddr.Pfx[A], covered bool)
	rec = func(n *node[A, struct{}], at netaddr.Pfx[A], covered bool) {
		if n == nil {
			// No announcements below. Emit the whole block if some
			// ancestor announced it.
			if covered {
				out = append(out, at)
			}
			return
		}
		if n.hasValue {
			covered = true
		}
		if covered && !subtreeHasValue(n.child[0]) && !subtreeHasValue(n.child[1]) {
			// Announced (or ancestor-covered) block with no more-specifics:
			// a leaf piece of the partition.
			out = append(out, at)
			return
		}
		if !covered && !subtreeHasValue(n.child[0]) && !subtreeHasValue(n.child[1]) {
			return // dead interior path
		}
		lo, hi, ok := at.Split()
		if !ok {
			if covered {
				out = append(out, at)
			}
			return
		}
		rec(n.child[0], lo, covered)
		rec(n.child[1], hi, covered)
	}
	rec(t.root, netaddr.Pfx[A]{}, false)
	return out
}
