package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tass-scan/tass/internal/netaddr"
)

func pfx(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }

func TestInsertGetDelete(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatal("new trie not empty")
	}
	if replaced := tr.Insert(pfx("10.0.0.0/8"), 1); replaced {
		t.Error("first insert reported replace")
	}
	if replaced := tr.Insert(pfx("10.0.0.0/8"), 2); !replaced {
		t.Error("second insert did not report replace")
	}
	tr.Insert(pfx("10.0.0.0/16"), 3)
	tr.Insert(pfx("0.0.0.0/0"), 4)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != 2 {
		t.Errorf("Get(/8) = %d, %v", v, ok)
	}
	if _, ok := tr.Get(pfx("10.0.0.0/9")); ok {
		t.Error("Get(/9) should miss")
	}
	if !tr.Delete(pfx("10.0.0.0/8")) || tr.Delete(pfx("10.0.0.0/8")) {
		t.Error("delete semantics wrong")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
}

func TestLookupLongestMatch(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "l")
	tr.Insert(pfx("10.16.0.0/12"), "m")
	tr.Insert(pfx("10.16.32.0/24"), "deep")

	cases := []struct {
		addr string
		want string
	}{
		{"10.16.32.7", "deep"},
		{"10.16.33.0", "m"},
		{"10.200.0.1", "l"},
		{"192.0.2.1", "default"},
	}
	for _, c := range cases {
		p, v, ok := tr.Lookup(netaddr.MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %v,%q,%v; want %q", c.addr, p, v, ok, c.want)
		}
	}

	empty := New[string]()
	if _, _, ok := empty.Lookup(netaddr.MustParseAddr("1.2.3.4")); ok {
		t.Error("lookup in empty trie should miss")
	}
}

func TestLookupReturnsContainingPrefix(t *testing.T) {
	f := func(v uint32, bitsRaw uint8, probe uint32) bool {
		bits := int(bitsRaw % 33)
		p := netaddr.MustPrefixFrom(netaddr.Addr(v), bits)
		tr := New[int]()
		tr.Insert(p, 7)
		a := p.Addr() | (netaddr.Addr(probe) &^ p.Mask()) // force inside p
		got, val, ok := tr.Lookup(a)
		return ok && got == p && val == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupPrefix(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("10.0.0.0/8"), "l")
	tr.Insert(pfx("10.16.0.0/12"), "m")
	p, v, ok := tr.LookupPrefix(pfx("10.16.32.0/24"))
	if !ok || v != "m" || p != pfx("10.16.0.0/12") {
		t.Errorf("LookupPrefix = %v, %q, %v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(pfx("10.16.0.0/12"))
	if !ok || v != "m" {
		t.Errorf("LookupPrefix self = %v, %q, %v", p, v, ok)
	}
	if _, _, ok := tr.LookupPrefix(pfx("11.0.0.0/8")); ok {
		t.Error("should miss")
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	tr := New[int]()
	in := []string{"10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9", "0.0.0.0/0"}
	for i, s := range in {
		tr.Insert(pfx(s), i)
	}
	var got []string
	tr.Walk(func(p netaddr.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", got, want)
		}
	}
	n := 0
	tr.Walk(func(netaddr.Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCovered(t *testing.T) {
	tr := New[int]()
	for i, s := range []string{"10.0.0.0/8", "10.16.0.0/12", "10.16.32.0/24", "11.0.0.0/8"} {
		tr.Insert(pfx(s), i)
	}
	var got []string
	tr.Covered(pfx("10.16.0.0/12"), func(p netaddr.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	if len(got) != 2 || got[0] != "10.16.0.0/12" || got[1] != "10.16.32.0/24" {
		t.Errorf("Covered = %v", got)
	}
}

func TestHasStrictDescendant(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.0/8"), 0)
	tr.Insert(pfx("10.16.0.0/12"), 1)
	if !tr.HasStrictDescendant(pfx("10.0.0.0/8")) {
		t.Error("/8 has a /12 below")
	}
	if tr.HasStrictDescendant(pfx("10.16.0.0/12")) {
		t.Error("/12 has nothing below")
	}
	if tr.HasStrictDescendant(pfx("11.0.0.0/8")) {
		t.Error("unrelated prefix")
	}
	if !tr.HasStrictDescendant(pfx("0.0.0.0/0")) {
		t.Error("/0 covers everything stored")
	}
}

func TestRootsAndLessSpecificOnly(t *testing.T) {
	in := []netaddr.Prefix{
		pfx("10.0.0.0/8"), pfx("10.16.0.0/12"), pfx("10.16.32.0/24"),
		pfx("192.0.2.0/24"), pfx("192.0.2.0/24"), // duplicate
		pfx("100.64.0.0/10"),
	}
	got := LessSpecificOnly(in)
	want := []string{"10.0.0.0/8", "100.64.0.0/10", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("LessSpecificOnly = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("LessSpecificOnly = %v, want %v", got, want)
		}
	}
}

func TestDeaggregateFigure2(t *testing.T) {
	// The paper's Figure 2: a /8 containing an announced /12 decomposes
	// into /9, /10, /11 and two /12s (the announced one and its sibling).
	in := []netaddr.Prefix{pfx("100.0.0.0/8"), pfx("100.16.0.0/12")}
	got := Deaggregate(in)
	want := []string{
		"100.0.0.0/12",  // sibling of the announced m-prefix
		"100.16.0.0/12", // the announced m-prefix, intact
		"100.32.0.0/11",
		"100.64.0.0/10",
		"100.128.0.0/9",
	}
	if len(got) != len(want) {
		t.Fatalf("Deaggregate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("Deaggregate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDeaggregatePassThrough(t *testing.T) {
	in := []netaddr.Prefix{pfx("10.0.0.0/8"), pfx("192.0.2.0/24")}
	got := Deaggregate(in)
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Errorf("prefixes without more-specifics must pass through: %v", got)
	}
}

func TestDeaggregateNested(t *testing.T) {
	// m-prefix inside m-prefix inside l-prefix: both levels decompose.
	in := []netaddr.Prefix{pfx("10.0.0.0/8"), pfx("10.0.0.0/12"), pfx("10.0.0.0/16")}
	got := Deaggregate(in)
	// Partition property: sorted, disjoint, sums to the /8.
	var total uint64
	for i, p := range got {
		total += p.NumAddresses()
		if i > 0 && got[i-1].Compare(p) >= 0 {
			t.Fatalf("not sorted: %v", got)
		}
		if i > 0 && got[i-1].Overlaps(p) {
			t.Fatalf("overlap: %v and %v", got[i-1], p)
		}
	}
	if total != pfx("10.0.0.0/8").NumAddresses() {
		t.Fatalf("partition covers %d addrs, want %d", total, pfx("10.0.0.0/8").NumAddresses())
	}
	// The innermost /16 must survive intact.
	found := false
	for _, p := range got {
		if p == pfx("10.0.0.0/16") {
			found = true
		}
	}
	if !found {
		t.Error("announced /16 lost in deaggregation")
	}
}

func TestDeaggregateStandaloneMoreSpecific(t *testing.T) {
	// An announced prefix with no covering l-prefix stays as-is; nothing
	// else is emitted for its siblings.
	in := []netaddr.Prefix{pfx("203.0.113.0/24")}
	got := Deaggregate(in)
	if len(got) != 1 || got[0] != in[0] {
		t.Errorf("Deaggregate = %v", got)
	}
}

// randomPrefixSet builds a plausible announced table: a few short prefixes
// plus nested more-specifics.
func randomPrefixSet(rng *rand.Rand, n int) []netaddr.Prefix {
	ps := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		bits := 4 + rng.Intn(21) // /4../24
		p := netaddr.MustPrefixFrom(netaddr.Addr(rng.Uint32()), bits)
		ps = append(ps, p)
		// Half the time, announce a more-specific inside it too.
		if rng.Intn(2) == 0 {
			sub := bits + 1 + rng.Intn(6)
			if sub > 32 {
				sub = 32
			}
			off := netaddr.Addr(rng.Uint32()) &^ p.Mask()
			ps = append(ps, netaddr.MustPrefixFrom(p.Addr()|off, sub))
		}
	}
	return ps
}

func TestDeaggregatePartitionProperty(t *testing.T) {
	// For random announced sets: the deaggregated result is sorted,
	// pairwise disjoint, covers exactly the union of the input, and every
	// announced prefix equals the union of the pieces inside it.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		in := randomPrefixSet(rng, 30)
		out := Deaggregate(in)

		for i := 1; i < len(out); i++ {
			if out[i-1].Compare(out[i]) >= 0 {
				t.Fatalf("iter %d: output not strictly sorted", iter)
			}
			if out[i-1].Overlaps(out[i]) {
				t.Fatalf("iter %d: adjacent overlap %v %v", iter, out[i-1], out[i])
			}
		}

		// Union size must match: measure via the l-prefix roots.
		roots := LessSpecificOnly(in)
		var wantTotal, gotTotal uint64
		for _, p := range roots {
			wantTotal += p.NumAddresses()
		}
		for _, p := range out {
			gotTotal += p.NumAddresses()
		}
		if wantTotal != gotTotal {
			t.Fatalf("iter %d: union %d addrs, want %d", iter, gotTotal, wantTotal)
		}

		// Every piece lies inside some root; every root is fully tiled.
		rootTrie := New[struct{}]()
		for _, r := range roots {
			rootTrie.Insert(r, struct{}{})
		}
		for _, p := range out {
			if _, _, ok := rootTrie.LookupPrefix(p); !ok {
				t.Fatalf("iter %d: piece %v outside all roots", iter, p)
			}
		}

		// Announced more-specifics that are not further subdivided must
		// appear intact in the partition.
		outTrie := New[struct{}]()
		for _, p := range out {
			outTrie.Insert(p, struct{}{})
		}
		inTrie := New[struct{}]()
		for _, p := range in {
			inTrie.Insert(p, struct{}{})
		}
		for _, p := range in {
			if !inTrie.HasStrictDescendant(p) {
				if _, ok := outTrie.Get(p); !ok {
					t.Fatalf("iter %d: leaf announcement %v missing from partition", iter, p)
				}
			}
		}
	}
}

func BenchmarkInsertFullTable(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := randomPrefixSet(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[struct{}]()
		for _, p := range ps {
			tr.Insert(p, struct{}{})
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[struct{}]()
	for _, p := range randomPrefixSet(rng, 100000) {
		tr.Insert(p, struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(netaddr.Addr(rng.Uint32()))
	}
}

func BenchmarkDeaggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := randomPrefixSet(rng, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Deaggregate(ps)
	}
}
