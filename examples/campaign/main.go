// Campaign: a six-month periodic-scanning campaign comparing every
// strategy of the paper head to head (Figures 5 and 6 in one table).
//
// For each strategy the program reports the per-cycle probe cost and the
// hitrate trajectory over seven monthly ground-truth snapshots: the
// trade-off between being a good Internet citizen (fewer probes) and
// coverage (hosts found).
//
//	go run ./examples/campaign [protocol]
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/tass-scan/tass"
)

func main() {
	protocol := "http"
	if len(os.Args) > 1 {
		protocol = os.Args[1]
	}

	fmt.Println("simulating a six-month Internet (synthetic censys.io stand-in)...")
	u, err := tass.GenerateUniverse(tass.SmallUniverseConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	series := tass.SimulateMonths(u, 8, 6)[protocol]
	if series == nil {
		log.Fatalf("unknown protocol %q (have ftp, http, https, cwmp)", protocol)
	}
	fullSpace := u.Less.AddressCount()
	fmt.Printf("protocol %s: %d hosts at month 0, %d addresses announced\n\n",
		protocol, series.At(0).Hosts(), fullSpace)

	strategies := []tass.Strategy{
		tass.FullScan{Universe: u.Less},
		tass.HitlistStrategy{},
		tass.SampleStrategy{Universe: u.Less, Blocks: 2400, Seed: 99},
		tass.TASSStrategy{Universe: u.Less, Opts: tass.Options{Phi: 1}, Label: "tass-l phi=1.00"},
		tass.TASSStrategy{Universe: u.More, Opts: tass.Options{Phi: 1}, Label: "tass-m phi=1.00"},
		tass.TASSStrategy{Universe: u.Less, Opts: tass.Options{Phi: 0.95}, Label: "tass-l phi=0.95"},
		tass.TASSStrategy{Universe: u.More, Opts: tass.Options{Phi: 0.95}, Label: "tass-m phi=0.95"},
	}

	fmt.Printf("%-16s %10s %7s | hitrate by month\n", "strategy", "probes", "share")
	fmt.Println("--------------------------------------------------------------------------")
	for _, s := range strategies {
		ev, err := tass.Evaluate(s, series, fullSpace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %6.1f%% |", ev.Strategy, ev.Cost, 100*ev.CostShare)
		for _, h := range ev.Hitrate {
			fmt.Printf(" %.3f", h)
		}
		fmt.Println()
	}

	fmt.Println(`
reading the table:
  full scan     probes everything every cycle: perfect coverage, maximal footprint.
  hitlist       cheapest, but dynamic addressing erodes it within weeks (paper fig. 5).
  sample24      Heidemann-style /24 sample: tiny cost, tiny coverage.
  tass          prefix selection holds its hitrate for months at a fraction
                of the probes (paper fig. 6); m-prefixes are cheaper than
                l-prefixes, l-prefixes age slightly better.`)
}
