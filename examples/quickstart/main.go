// Quickstart: seed TASS with one full scan and print the periodic scan
// plan.
//
// The program generates a small synthetic Internet (standing in for a
// real announced table + full-scan result), then runs the paper's
// selection at φ=0.95 on both prefix universes and prints what a
// periodic scanner would probe each cycle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tass-scan/tass"
)

func main() {
	// 1. A scanning universe. Real deployments load a CAIDA pfx2as table
	//    (tass.ReadPfx2as) or an MRT RIB dump (tass.ExtractMRT); here we
	//    synthesize a small Internet instead.
	u, err := tass.GenerateUniverse(tass.SmallUniverseConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	table := u.Table
	fmt.Printf("announced table: %d prefixes covering %d addresses\n",
		table.Len(), table.AnnouncedSpace())

	// 2. A seed scan: the responsive addresses of one full sweep. Real
	//    deployments feed zmap/censys output; we read the synthetic FTP
	//    population.
	seed := tass.NewSnapshot("ftp", 0, u.Pops["ftp"].Addresses())
	fmt.Printf("seed scan: %d responsive FTP hosts (hitrate %.3f%%)\n\n",
		seed.Hosts(), 100*float64(seed.Hosts())/float64(table.AnnouncedSpace()))

	// 3. TASS selection on both prefix universes (paper Figure 2 / §3.2).
	for _, uni := range []struct {
		name string
		part tass.Partition
	}{
		{"l-prefixes (less specific)", table.LessSpecifics()},
		{"m-prefixes (deaggregated) ", table.Deaggregated()},
	} {
		sel, err := tass.Select(seed, uni.part, tass.Options{Phi: 0.95})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", uni.name, tass.Describe(sel))
	}

	// 4. The actual plan: the top of the density ranking is what the
	//    periodic scanner probes first.
	sel, err := tass.Select(seed, table.Deaggregated(), tass.Options{Phi: 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndensest prefixes of the plan:")
	for i, st := range sel.Ranked[:5] {
		fmt.Printf("  #%d %-18v %4d hosts  density %.3f\n", i+1, st.Prefix, st.Hosts, st.Density)
	}
	fmt.Printf("\nre-scan these %d prefixes each cycle; reseed with a full scan every ~6 months.\n", sel.K)
}
