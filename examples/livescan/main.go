// Livescan: run the real scanner engine end to end on the loopback
// network — actual TCP sockets, sharded permutation targeting, rate
// limiting and banner grabbing — then close the paper's loop with a
// feedback campaign: the first cycle's results seed a TASS selection,
// and the second cycle scans only the selected (dense) blocks.
//
// The program starts a handful of listeners on 127.0.0.0/28 addresses,
// scans that /28 with the TCP prober, prints each cycle's report, and
// shows how the campaign tightened the plan. It touches nothing outside
// the loopback interface.
//
//	go run ./examples/livescan
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/tass-scan/tass"
)

func main() {
	// 1. Local "Internet": FTP-style listeners on a few loopback
	//    addresses, clustered so TASS has density structure to find.
	//    (On Linux every 127.0.0.0/8 address is bound to lo.)
	liveHosts := []string{"127.0.0.1", "127.0.0.2", "127.0.0.3", "127.0.0.9"}
	port := 0
	var listeners []net.Listener
	for _, host := range liveHosts {
		addr := host + ":0"
		if port != 0 {
			addr = fmt.Sprintf("%s:%d", host, port)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("listen %s: %v (loopback aliases unavailable?)", addr, err)
		}
		if port == 0 {
			port = ln.Addr().(*net.TCPAddr).Port
		}
		defer ln.Close()
		listeners = append(listeners, ln)
		go serveFTPBanner(ln)
	}
	fmt.Printf("started %d listeners on port %d\n", len(listeners), port)

	// 2. The scanning universe: /30 blocks of 127.0.0.0/28, the stand-in
	//    for announced prefixes. Three of the four listeners live in the
	//    first block — the density skew TASS exploits.
	blocks := []tass.Prefix{
		tass.MustParsePrefix("127.0.0.0/30"),
		tass.MustParsePrefix("127.0.0.4/30"),
		tass.MustParsePrefix("127.0.0.8/30"),
		tass.MustParsePrefix("127.0.0.12/30"),
	}
	universe, err := tass.NewPartition(blocks)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic origin ASes for the good-citizen layer: the first two
	// blocks belong to AS 64500, the last two to AS 64501 (the private
	// AS range) — the stand-in for a pfx2as table's origin mapping.
	originOf := func(plan tass.Partition) []uint32 {
		out := make([]uint32, plan.Len())
		for i := 0; i < plan.Len(); i++ {
			if j, ok := universe.Find(plan.Prefix(i).First()); ok && j >= 2 {
				out[i] = 64501
			} else {
				out[i] = 64500
			}
		}
		return out
	}

	// 3. The feedback campaign: cycle 0 scans the whole universe with
	//    the real engine (permuted order, rate limited, concurrent
	//    workers, banner grab); its results seed a φ=0.75 selection;
	//    cycle 1 scans only the selected dense blocks. The politeness
	//    layer paces each synthetic AS separately and keeps the per-AS
	//    footprint ledger printed below.
	campaign := &tass.ScanCampaign{
		Universe: universe,
		Prober:   &tass.TCPProber{Port: port, Timeout: 500 * time.Millisecond, BannerBytes: 64},
		Opts:     tass.Options{Phi: 0.75},
		Rate:     64, // probes per second: deliberately gentle
		Workers:  4,
		Seed:     time.Now().UnixNano(),
		Politeness: tass.ScanPoliteness{
			ASRate:    48, // no single origin AS sees the full global rate
			Footprint: true,
		},
		OriginsOf: originOf,
		OnResult: func(r tass.ScanResult) {
			if r.Open {
				fmt.Printf("  open %-12v rtt=%-8v banner=%q\n", r.Addr, r.RTT.Round(time.Microsecond), r.Banner)
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cycles, err := campaign.Run(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, cy := range cycles {
		fmt.Printf("\ncycle %d: %d prefixes, %d probed, %d responsive, hitrate %.1f%%, cost %.0f%% of universe, %v elapsed\n",
			cy.Index, cy.Plan.Len(), cy.Report.Probed, cy.Snapshot.Hosts(),
			100*cy.Report.Hitrate(), 100*cy.CostShare(universe),
			cy.Report.Elapsed.Round(time.Millisecond))
		fmt.Printf("per-AS footprint of cycle %d:\n", cy.Index)
		if err := tass.WriteFootprint(os.Stdout, cy.Plan, originOf(cy.Plan), cy.Report); err != nil {
			log.Fatal(err)
		}
	}

	// 4. The selection the campaign derived from the live scan — what a
	//    periodic re-scan would keep probing.
	sel := cycles[0].Selection
	fmt.Printf("\nTASS on cycle 0's scan (φ=0.75 over /30 blocks): %s\n", tass.Describe(sel))
	for i, st := range sel.Ranked {
		mark := " "
		if i < sel.K {
			mark = "*"
		}
		fmt.Printf("  %s %-14v %d hosts, density %.2f\n", mark, st.Prefix, st.Hosts, st.Density)
	}
	fmt.Println("\n(*) selected: cycle 1 probed exactly these blocks.")
}

func serveFTPBanner(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintf(conn, "220 %s synthetic FTP service ready\r\n", ln.Addr())
		conn.Close()
	}
}
