// Livescan: run the real scanner engine end to end on the loopback
// network — actual TCP sockets, permutation targeting, rate limiting and
// banner grabbing — then feed the results into TASS selection.
//
// The program starts a handful of listeners on 127.0.0.0/28 addresses,
// scans that /28 with the TCP prober, prints the scan report, and shows
// the prefix ranking a follow-up selection would use. It touches nothing
// outside the loopback interface.
//
//	go run ./examples/livescan
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/tass-scan/tass"
)

func main() {
	// 1. Local "Internet": FTP-style listeners on a few loopback
	//    addresses. (On Linux every 127.0.0.0/8 address is bound to lo.)
	liveHosts := []string{"127.0.0.1", "127.0.0.3", "127.0.0.4", "127.0.0.9"}
	port := 0
	var listeners []net.Listener
	for _, host := range liveHosts {
		addr := host + ":0"
		if port != 0 {
			addr = fmt.Sprintf("%s:%d", host, port)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("listen %s: %v (loopback aliases unavailable?)", addr, err)
		}
		if port == 0 {
			port = ln.Addr().(*net.TCPAddr).Port
		}
		defer ln.Close()
		listeners = append(listeners, ln)
		go serveFTPBanner(ln)
	}
	fmt.Printf("started %d listeners on port %d\n", len(listeners), port)

	// 2. Scan 127.0.0.0/28 with the real engine: permuted order, rate
	//    limited, concurrent workers, banner grab.
	targets, err := tass.NewPartition([]tass.Prefix{tass.MustParsePrefix("127.0.0.0/28")})
	if err != nil {
		log.Fatal(err)
	}
	scanner, err := tass.NewScanner(tass.ScanConfig{
		Targets: targets,
		Prober:  &tass.TCPProber{Port: port, Timeout: 500 * time.Millisecond, BannerBytes: 64},
		Rate:    64, // probes per second: deliberately gentle
		Workers: 8,
		Seed:    time.Now().UnixNano(),
		OnResult: func(r tass.ScanResult) {
			if r.Open {
				fmt.Printf("  open %-12v rtt=%-8v banner=%q\n", r.Addr, r.RTT.Round(time.Microsecond), r.Banner)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := scanner.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscan report: %d probed, %d responsive, hitrate %.1f%%, %v elapsed\n",
		report.Probed, len(report.Responsive), 100*report.Hitrate(), report.Elapsed.Round(time.Millisecond))

	// 3. Feed the scan into TASS: rank /30 blocks of the loopback range
	//    by density, exactly as a real campaign would rank announced
	//    prefixes.
	blocks := []tass.Prefix{
		tass.MustParsePrefix("127.0.0.0/30"),
		tass.MustParsePrefix("127.0.0.4/30"),
		tass.MustParsePrefix("127.0.0.8/30"),
		tass.MustParsePrefix("127.0.0.12/30"),
	}
	universe, err := tass.NewPartition(blocks)
	if err != nil {
		log.Fatal(err)
	}
	seed := tass.NewSnapshot("ftp", 0, report.Responsive)
	sel, err := tass.Select(seed, universe, tass.Options{Phi: 0.75})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTASS on the scan result (φ=0.75 over /30 blocks): %s\n", tass.Describe(sel))
	for i, st := range sel.Ranked {
		mark := " "
		if i < sel.K {
			mark = "*"
		}
		fmt.Printf("  %s %-14v %d hosts, density %.2f\n", mark, st.Prefix, st.Hosts, st.Density)
	}
	fmt.Println("\n(*) selected for the periodic re-scan.")
}

func serveFTPBanner(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintf(conn, "220 %s synthetic FTP service ready\r\n", ln.Addr())
		conn.Close()
	}
}
