// Ipv6plan: the paper's closing thought, made concrete — "When IPv6
// becomes popular, brute forcing the address space becomes infeasible.
// ... Perhaps TASS can offer a blueprint for tackling that challenge."
//
// For IPv6 there is no full scan to seed from: the program synthesizes
// passive observations (the Plonka & Berger direction the paper cites)
// over a set of announced /32s and /48s, then runs the same
// density-ranked selection. The punchline is the scale arithmetic: the
// plan covers a space dozens of times smaller than the announced space
// — still unscannable exhaustively, but a tractable target list for
// hitlist-driven IPv6 probing.
//
//	go run ./examples/ipv6plan
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/tass-scan/tass"
)

func main() {
	rng := rand.New(rand.NewSource(6))

	// 1. An announced IPv6 universe: 300 /32s (carriers) and 500 /48s
	//    (enterprises), disjoint by construction.
	var prefixes []tass.Prefix6
	for i := 0; i < 300; i++ {
		a := tass.Addr6{Hi: 0x2400_0000_0000_0000 + uint64(i)<<37}
		p, err := prefix6From(a, 32)
		if err != nil {
			log.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	for i := 0; i < 500; i++ {
		a := tass.Addr6{Hi: 0x2A00_0000_0000_0000 + uint64(i)<<20}
		p, err := prefix6From(a, 48)
		if err != nil {
			log.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	universe, err := tass.NewUniverse6(prefixes)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Passive seed observations: most activity clusters in a few
	//    prefixes (content networks), a thin tail everywhere else.
	var seeds []tass.Addr6
	for i, p := range prefixes {
		n := 1 + rng.Intn(3) // tail
		if i%37 == 0 {
			n = 200 + rng.Intn(400) // a busy network
		}
		for j := 0; j < n; j++ {
			seeds = append(seeds, tass.Addr6{
				Hi: p.Addr().Hi | uint64(rng.Intn(1<<16)),
				Lo: rng.Uint64(),
			})
		}
	}
	fmt.Printf("universe: %d announced prefixes; seed: %d passive observations\n",
		universe.Len(), len(seeds))

	// 3. The same TASS selection, IPv6-width.
	sel, err := tass.Select6(seeds, universe, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	announced := 0.0
	for _, p := range prefixes {
		announced += math.Pow(2, float64(128-p.Bits()))
	}
	announcedBits := math.Log2(announced)
	fmt.Printf("\nφ=0.90 plan: %d of %d responsive prefixes, %.1f%% of observations\n",
		sel.K, len(sel.Ranked), 100*sel.HostCoverage)
	fmt.Printf("selected space: 2^%.1f addresses (announced: 2^%.1f)\n", sel.SpaceBits, announcedBits)
	fmt.Printf("space reduction: 2^%.1f-fold\n", announcedBits-sel.SpaceBits)
	fmt.Println("\ndensest prefixes of the plan:")
	for i, st := range sel.Ranked[:3] {
		fmt.Printf("  #%d %-24v %4d observations\n", i+1, st.Prefix, st.Hosts)
	}
	fmt.Println("\nbrute force is impossible either way; the plan turns IPv6 scanning")
	fmt.Println("into hitlist probing over a small, evidence-ranked prefix set.")
}

func prefix6From(a tass.Addr6, bits int) (tass.Prefix6, error) {
	// tass.ParsePrefix6 round-trips through text; building from the
	// binary form avoids formatting 800 prefixes.
	return tass.ParsePrefix6(a.String() + fmt.Sprintf("/%d", bits))
}
