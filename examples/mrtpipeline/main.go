// Mrtpipeline: the full data path from raw BGP routing data to a TASS
// scan plan.
//
//	MRT RIB dump  ->  prefix→AS table  ->  l/m universes  ->  selection
//
// Real deployments download a Routeviews TABLE_DUMP_V2 archive; this
// example synthesizes one (internal/mrt.SynthesizeRIB) so it runs
// offline, then treats it exactly like a downloaded file.
//
//	go run ./examples/mrtpipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/mrt"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
)

func main() {
	// 1. "Download" an MRT RIB: synthesize a 400-route TABLE_DUMP_V2
	//    stream with two collector peers, including aggregates with
	//    announced more-specifics (the paper's l/m structure).
	var archive bytes.Buffer
	if err := synthesizeArchive(&archive); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRT archive: %d bytes\n", archive.Len())

	// 2. Reduce the RIB to a prefix→AS table (what CAIDA's pfx2as does).
	table, skipped, err := tass.ExtractMRT(&archive)
	if err != nil {
		log.Fatal(err)
	}
	stats := table.Stats()
	fmt.Printf("extracted table: %d prefixes (%d skipped), %.0f%% more-specifics covering %.0f%% of %d addresses\n",
		stats.Prefixes, skipped, 100*stats.MoreShare, 100*stats.MoreSpaceShare, stats.Space)

	// 3. Derive the two scanning universes.
	l, m := table.LessSpecifics(), table.Deaggregated()
	fmt.Printf("universes: %d l-prefixes, %d m-prefix pieces (same %d addresses)\n",
		l.Len(), m.Len(), l.AddressCount())

	// 4. A seed scan over the announced space (synthetic responsive set:
	//    hosts clustered in the announced more-specifics).
	seed := synthesizeSeedScan(table)
	fmt.Printf("seed scan: %d responsive hosts\n\n", seed.Hosts())

	// 5. Selection on both universes: the m-prefix plan is cheaper for
	//    the same coverage because deaggregation isolates the dense
	//    more-specifics (paper Table 1).
	for _, uni := range []struct {
		name string
		part tass.Partition
	}{{"l-universe", l}, {"m-universe", m}} {
		sel, err := tass.Select(seed, uni.part, tass.Options{Phi: 0.95})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", uni.name, tass.Describe(sel))
	}
}

func synthesizeArchive(buf *bytes.Buffer) error {
	rng := rand.New(rand.NewSource(11))
	peers := []mrt.Peer{
		{BGPID: 0x01010101, Addr: netaddr.MustParseAddr("198.51.100.1"), AS: 64500, AS4: true},
		{BGPID: 0x02020202, Addr: netaddr.MustParseAddr("198.51.100.2"), AS: 64501, AS4: true},
	}
	var routes []pfx2as.Record
	cursor := uint32(0x14000000) // 20.0.0.0
	for i := 0; i < 200; i++ {
		bits := 14 + rng.Intn(5) // l-prefixes /14../18
		size := uint32(1) << (32 - uint(bits))
		cursor = (cursor + size - 1) / size * size
		lp, err := netaddr.PrefixFrom(netaddr.Addr(cursor), bits)
		if err != nil {
			return err
		}
		cursor += size
		asn := uint32(65000 + i)
		routes = append(routes, pfx2as.Record{Prefix: lp, Origin: pfx2as.SingleOrigin(asn)})
		// Announce a more-specific inside most l-prefixes.
		if rng.Intn(3) > 0 {
			sub := bits + 2 + rng.Intn(3)
			off := netaddr.Addr(rng.Uint32()) &^ lp.Mask()
			mp, err := netaddr.PrefixFrom(lp.Addr()|off, sub)
			if err != nil {
				return err
			}
			routes = append(routes, pfx2as.Record{Prefix: mp, Origin: pfx2as.SingleOrigin(asn + 10000)})
		}
	}
	return mrt.SynthesizeRIB(buf, 1441065600, 0xC0A80001, peers, routes)
}

func synthesizeSeedScan(table *tass.Table) *tass.Snapshot {
	rng := rand.New(rand.NewSource(12))
	var addrs []tass.Addr
	for _, e := range table.Entries() {
		// Dense population inside announced more-specifics, sparse
		// elsewhere: the density contrast TASS exploits.
		perPrefix := 2
		if e.Prefix.Bits() >= 16 {
			perPrefix = 40
		}
		for i := 0; i < perPrefix; i++ {
			off := netaddr.Addr(rng.Uint32()) &^ e.Prefix.Mask()
			addrs = append(addrs, e.Prefix.Addr()|off)
		}
	}
	return tass.NewSnapshot("ftp", 0, addrs)
}
