// Hugecensus: select from a census far bigger than you want in RAM.
//
// The program generates a synthetic ~50M-address census (a stand-in
// for a full-universe survey like the paper's censys.io seed), writes
// it as a v1 snapshot stream, converts it to the indexed TASSNAP2
// format without materializing it (the `tass convert -in` path), and
// then runs a TASS selection from a cold open — timing the open,
// counting pass, and selection, and asserting that the heap stays
// under a stated budget that is a small fraction of the decoded
// census.
//
// The budget is the point: the decoded census alone is 4 bytes per
// host (200 MB at 50M), while the lazy snapshot holds only the block
// index (~0.5 bytes per host) plus a bounded LRU of decoded blocks.
// The program exits non-zero if the budget is exceeded, so CI can run
// it as a regression smoke (scaled down via HUGECENSUS_HOSTS).
//
//	go run ./examples/hugecensus
//	HUGECENSUS_HOSTS=3000000 go run ./examples/hugecensus
package main

import (
	"bufio"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"github.com/tass-scan/tass"
)

func main() {
	hosts := 50_000_000
	if s := os.Getenv("HUGECENSUS_HOSTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			log.Fatalf("HUGECENSUS_HOSTS=%q: want a positive integer", s)
		}
		hosts = n
	}
	// Heap budget for the select-from-cold-open phase: the block index
	// (~0.5 B/host) plus fixed headroom for the decoded-block LRU, the
	// universe partition and the counting scratch. The eager baseline —
	// just the decoded address slice — is 4 B/host.
	budget := uint64(hosts) + 48<<20

	dir, err := os.MkdirTemp("", "hugecensus")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("generating a %d-host synthetic census...\n", hosts)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]tass.Addr, 0, hosts)
	v := uint32(0)
	for len(addrs) < hosts {
		if rng.Intn(1000) == 0 {
			v += uint32(rng.Intn(1 << 18)) // a run of dark space
		}
		v += 1 + uint32(rng.Intn(120))
		addrs = append(addrs, tass.Addr(v))
	}
	last := addrs[len(addrs)-1]
	snap := tass.NewSnapshot("census", 0, addrs)

	v1Path := filepath.Join(dir, "census.v1")
	f, err := os.Create(v1Path)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := snap.WriteTo(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// Convert the v1 stream to the indexed format block by block — the
	// conversion itself never holds the census decoded.
	v2Path := filepath.Join(dir, "census.snap2")
	in, err := os.Open(v1Path)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := tass.ConvertSnapshotFile(bufio.NewReaderSize(in, 1<<20), v2Path); err != nil {
		log.Fatal(err)
	}
	in.Close()
	st, _ := os.Stat(v2Path)
	fmt.Printf("converted to TASSNAP2 in %v: %d bytes on disk (%.2f B/host)\n",
		time.Since(start).Round(time.Millisecond), st.Size(), float64(st.Size())/float64(hosts))

	// The universe: /12 slices across the populated span.
	var pfx []tass.Prefix
	for base := uint64(0); base <= uint64(last); base += 1 << 20 {
		p, err := tass.ParsePrefix(fmt.Sprintf("%v/12", tass.Addr(base)))
		if err != nil {
			log.Fatal(err)
		}
		pfx = append(pfx, p)
	}
	universe, err := tass.NewPartition(pfx)
	if err != nil {
		log.Fatal(err)
	}

	// Drop every trace of the generation phase before measuring: from
	// here on, the census exists only as a file.
	addrs, snap = nil, nil
	runtime.GC()

	start = time.Now()
	lazySnap, err := tass.OpenSnapshotFile(v2Path)
	if err != nil {
		log.Fatal(err)
	}
	defer lazySnap.Close()
	openTime := time.Since(start)
	if !lazySnap.Lazy() {
		log.Fatal("snapshot did not open lazily")
	}

	start = time.Now()
	sel, err := tass.SelectCached(lazySnap, universe, tass.Options{Phi: 0.95}, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	selectTime := time.Since(start)

	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Printf("cold open: %v; select (φ=0.95, %d-prefix universe): %v\n",
		openTime.Round(time.Microsecond), universe.Len(), selectTime.Round(time.Millisecond))
	fmt.Printf("%s\n", tass.Describe(sel))
	fmt.Printf("resident blocks after select: %d\n", lazySnap.Set().ResidentBlocks())
	fmt.Printf("heap in use: %.1f MB (budget %.1f MB; decoded census would be %.1f MB)\n",
		float64(m.HeapInuse)/(1<<20), float64(budget)/(1<<20), float64(4*hosts)/(1<<20))
	if m.HeapInuse > budget {
		log.Fatalf("heap %.1f MB exceeds the %.1f MB budget: the lazy stack is materializing something",
			float64(m.HeapInuse)/(1<<20), float64(budget)/(1<<20))
	}
	fmt.Println("ok: selected from a cold open without decoding the census")
}
