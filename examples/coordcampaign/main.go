// Coordcampaign: a distributed TASS campaign surviving a worker crash.
//
// The program starts a campaign coordinator on a loopback HTTP port with
// a durable state file, registers a three-cycle campaign over a small
// documentation-range universe, and runs two workers against it. Probes
// are simulated (SimProber over a fixed ground truth — no packets leave
// the process), but the coordination is real: shard leases, heartbeat
// renewals, checkpoint uploads, all over actual HTTP.
//
// Mid-way through the first cycle one worker is killed. Its lease
// expires (the TTL is short), the coordinator re-leases the half-scanned
// shard to the surviving worker *with the dead worker's last uploaded
// cursor*, and the campaign completes. The program then audits the
// exactly-once guarantee: every address of every cycle's plan was probed
// exactly once, and the final responsive set is identical to the same
// campaign run by a single scanner with no coordinator at all.
//
//	go run ./examples/coordcampaign
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tass-scan/tass"
)

// ledger counts probes per (cycle, address): the exactly-once audit log.
type ledger struct {
	mu     sync.Mutex
	cycles map[int]map[tass.Addr]int
}

func (l *ledger) record(cycle int, addr tass.Addr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cycles == nil {
		l.cycles = map[int]map[tass.Addr]int{}
	}
	m := l.cycles[cycle]
	if m == nil {
		m = map[tass.Addr]int{}
		l.cycles[cycle] = m
	}
	m[addr]++
}

// countingProber records into the ledger, optionally fires a kill hook,
// and delegates to the deterministic simulation prober.
type countingProber struct {
	ledger  *ledger
	cycle   int
	inner   tass.Prober
	onProbe func()
}

func (p *countingProber) Probe(ctx context.Context, addr tass.Addr) (tass.ScanResult, error) {
	p.ledger.record(p.cycle, addr)
	if p.onProbe != nil {
		p.onProbe()
	}
	return p.inner.Probe(ctx, addr)
}

func main() {
	// 1. Ground truth: 45 "hosts" in TEST-NET-3, clustered in the first
	//    /26 so the re-selection has density structure to find.
	var truth []tass.Addr
	base := tass.MustParseAddr("203.0.113.0")
	for i := 0; i < 40; i++ {
		truth = append(truth, base+tass.Addr(i))
	}
	for i := 64; i < 69; i++ {
		truth = append(truth, base+tass.Addr(i))
	}
	universe := []string{"203.0.113.0/26", "203.0.113.64/26", "203.0.113.128/26", "203.0.113.192/26"}
	proberAt := func(cycle int) tass.Prober {
		p, err := tass.NewSimProber(truth, 0.1, 900+int64(cycle))
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	const cycles = 3

	// 2. The coordinator: durable state file, real HTTP on loopback.
	stateFile, err := os.CreateTemp("", "coordcampaign-state-*")
	if err != nil {
		log.Fatal(err)
	}
	stateFile.Close()
	os.Remove(stateFile.Name())
	defer os.Remove(stateFile.Name())
	coordinator, err := tass.NewCoordinator(tass.NewCoordFileStore(stateFile.Name()), nil)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: tass.NewCoordHandler(coordinator)}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("coordinator on %s (state: %s)\n", baseURL, stateFile.Name())

	// 3. The campaign: 3 cycles, 2 shard leases each, checkpoint every
	//    16 probes, and a deliberately short lease TTL so the kill below
	//    is recovered from in about a second.
	if err := coordinator.CreateCampaign(tass.CoordSpec{
		ID:          "demo",
		Universe:    universe,
		Phi:         0.9,
		Cycles:      cycles,
		Shards:      2,
		Workers:     2,
		Seed:        42,
		LeaseTTL:    time.Second,
		ChunkProbes: 16,
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Two workers. Worker a is killed at its 40th probe — mid-chunk,
	//    mid-cycle, with half a shard left. Worker b survives and
	//    inherits the orphaned shard once the lease lapses.
	audit := &ledger{}
	ctxA, killA := context.WithCancel(context.Background())
	defer killA()
	var aProbes atomic.Int64
	workerA := &tass.CoordWorker{
		Client:   tass.NewCoordClient(baseURL),
		ID:       "a",
		Campaign: "demo",
		ProberAt: func(cycle int) tass.Prober {
			return &countingProber{
				ledger: audit, cycle: cycle, inner: proberAt(cycle),
				onProbe: func() {
					if aProbes.Add(1) == 40 {
						fmt.Println("worker a: killed mid-cycle (40 probes in)")
						killA()
					}
				},
			}
		},
		OnEvent: func(f string, args ...any) { fmt.Printf("  [a] %s\n", fmt.Sprintf(f, args...)) },
	}
	workerB := &tass.CoordWorker{
		Client:   tass.NewCoordClient(baseURL),
		ID:       "b",
		Campaign: "demo",
		ProberAt: func(cycle int) tass.Prober {
			return &countingProber{ledger: audit, cycle: cycle, inner: proberAt(cycle)}
		},
		OnEvent: func(f string, args ...any) { fmt.Printf("  [b] %s\n", fmt.Sprintf(f, args...)) },
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); workerA.Run(ctxA) }()
	go func() {
		defer wg.Done()
		if err := workerB.Run(context.Background()); err != nil {
			log.Fatalf("worker b: %v", err)
		}
	}()
	wg.Wait()

	// 5. The audit. First: what did the fleet actually produce?
	status, err := tass.NewCoordClient(baseURL).Status(context.Background(), "demo")
	if err != nil {
		log.Fatal(err)
	}
	if !status.Done {
		log.Fatal("campaign did not complete")
	}
	for _, h := range status.History {
		fmt.Printf("cycle %d: %d plan prefixes, %d probed, %d responsive, %d lease grants\n",
			h.Cycle, h.Plan, h.Probed, h.Responsive, h.Releases)
	}
	if status.History[0].Releases <= 2 {
		log.Fatal("FAIL: no re-lease recorded; the kill was not recovered from")
	}

	// Exactly-once: every probed address of every cycle, exactly one
	// probe — despite the crash and the shard handover.
	for cycle, counts := range audit.cycles {
		for addr, n := range counts {
			if n != 1 {
				log.Fatalf("FAIL: cycle %d probed %v %d times", cycle, addr, n)
			}
		}
	}
	fmt.Println("exactly-once: every address probed exactly once in every cycle")

	// Equivalence: the same campaign on a single machine, no
	// coordinator, no crash — byte-identical responsive sets.
	prefixes := make([]tass.Prefix, len(universe))
	for i, s := range universe {
		prefixes[i] = tass.MustParsePrefix(s)
	}
	part, err := tass.NewPartition(prefixes)
	if err != nil {
		log.Fatal(err)
	}
	solo := &tass.ScanCampaign{
		Universe: part,
		ProberAt: proberAt,
		Opts:     tass.Options{Phi: 0.9},
		Workers:  2,
		Seed:     42,
	}
	ran, err := solo.Run(context.Background(), cycles)
	if err != nil {
		log.Fatal(err)
	}
	want := ran[len(ran)-1].Report.Responsive
	if len(status.Responsive) != len(want) {
		log.Fatalf("FAIL: distributed found %d responsive, single-node %d", len(status.Responsive), len(want))
	}
	for i := range want {
		if status.Responsive[i] != want[i] {
			log.Fatalf("FAIL: responsive sets differ at %d: %v != %v", i, status.Responsive[i], want[i])
		}
	}
	fmt.Printf("equivalence: distributed == single-node (%d responsive hosts)\n", len(want))
	fmt.Println("PASS")
}
