// Command mrt2pfx converts an MRT TABLE_DUMP_V2 RIB dump into a CAIDA-
// style pfx2as table — the reduction CAIDA applies to Routeviews
// archives to produce the prefix-to-AS datasets the TASS paper consumes.
//
// Usage:
//
//	mrt2pfx -in RIB.mrt [-out table.pfx2as]
//	mrt2pfx -synth N -out rib.mrt [-seed S]
//
// The second form synthesizes an N-route MRT RIB (for demos and tests;
// real users download Routeviews archives instead).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/mrt"
	"github.com/tass-scan/tass/internal/netaddr"
	"github.com/tass-scan/tass/internal/pfx2as"
)

func main() {
	var (
		in    = flag.String("in", "", "input MRT RIB dump")
		out   = flag.String("out", "", "output file (default stdout)")
		synth = flag.Int("synth", 0, "instead of converting, synthesize an N-route MRT RIB")
		seed  = flag.Int64("seed", 1, "seed for -synth")
	)
	flag.Parse()
	var err error
	switch {
	case *synth > 0:
		err = synthesize(*out, *synth, *seed)
	case *in != "":
		err = convert(*in, *out)
	default:
		fmt.Fprintln(os.Stderr, "mrt2pfx: need -in FILE or -synth N")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrt2pfx:", err)
		os.Exit(1)
	}
}

func convert(inPath, outPath string) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	table, skipped, err := tass.ExtractMRT(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d prefixes extracted, %d entries skipped\n", table.Len(), skipped)
	w := os.Stdout
	if outPath != "" {
		w, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return tass.WritePfx2as(w, table)
}

func synthesize(outPath string, n int, seed int64) error {
	if outPath == "" {
		return fmt.Errorf("-synth requires -out")
	}
	rng := rand.New(rand.NewSource(seed))
	peers := []mrt.Peer{
		{BGPID: 0x0A0A0A01, Addr: netaddr.MustParseAddr("198.51.100.1"), AS: 64500, AS4: true},
		{BGPID: 0x0A0A0A02, Addr: netaddr.MustParseAddr("198.51.100.2"), AS: 64501, AS4: true},
	}
	var routes []pfx2as.Record
	cursor := uint32(0x14000000) // 20.0.0.0
	for i := 0; i < n; i++ {
		bits := 12 + rng.Intn(13) // /12../24
		size := uint32(1) << (32 - uint(bits))
		cursor = (cursor + size - 1) / size * size
		p, err := netaddr.PrefixFrom(netaddr.Addr(cursor), bits)
		if err != nil {
			return err
		}
		cursor += size
		origin := pfx2as.SingleOrigin(uint32(64512 + rng.Intn(1000)))
		if rng.Intn(20) == 0 { // occasional MOAS
			origin.Groups = append(origin.Groups, []uint32{uint32(64512 + rng.Intn(1000))})
		}
		routes = append(routes, pfx2as.Record{Prefix: p, Origin: origin})
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mrt.SynthesizeRIB(f, 1441065600, 0xC0A80001, peers, routes); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d routes to %s\n", len(routes), outPath)
	return nil
}
