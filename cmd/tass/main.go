// Command tass computes TASS prefix selections from scan results.
//
// Usage:
//
//	tass select -pfx2as TABLE -addrs ADDRS [-phi 0.95] [-universe more]
//	tass rank   -pfx2as TABLE -addrs ADDRS [-top 20]
//	tass stats  -pfx2as TABLE
//
// TABLE is a CAIDA Routeviews pfx2as file; ADDRS is a text file with one
// responsive IPv4 address per line ('#' comments allowed). "select"
// prints the prefixes to scan each cycle, "rank" the densest prefixes,
// "stats" the aggregation structure of the table.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tass-scan/tass"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "select":
		err = runSelect(os.Args[2:])
	case "rank":
		err = runRank(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tass: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tass:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tass select -pfx2as TABLE -addrs ADDRS [-phi F] [-universe less|more] [-min-density F]
  tass rank   -pfx2as TABLE -addrs ADDRS [-universe less|more] [-top N]
  tass stats  -pfx2as TABLE
  tass diff   -a ADDRS -b ADDRS`)
}

func loadTable(path string) (*tass.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tass.ReadPfx2as(f)
}

func loadAddrs(path string) (*tass.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []tass.Addr
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		a, err := tass.ParseAddr(text)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		addrs = append(addrs, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tass.NewSnapshot("scan", 0, addrs), nil
}

func universeOf(t *tass.Table, which string) (tass.Partition, error) {
	switch which {
	case "less", "l":
		return t.LessSpecifics(), nil
	case "more", "m":
		return t.Deaggregated(), nil
	}
	return tass.Partition{}, fmt.Errorf("unknown universe %q (want less or more)", which)
}

func runSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required)")
	addrsPath := fs.String("addrs", "", "responsive addresses, one per line (required)")
	phi := fs.Float64("phi", 0.95, "host coverage target φ in (0,1]")
	universe := fs.String("universe", "more", "prefix universe: less or more")
	minDensity := fs.Float64("min-density", 0, "stop below this density (0 = off)")
	fs.Parse(args)
	if *tablePath == "" || *addrsPath == "" {
		return fmt.Errorf("select: -pfx2as and -addrs are required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	seed, err := loadAddrs(*addrsPath)
	if err != nil {
		return err
	}
	part, err := universeOf(table, *universe)
	if err != nil {
		return err
	}
	sel, err := tass.Select(seed, part, tass.Options{Phi: *phi, MinDensity: *minDensity})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s\n", tass.Describe(sel))
	w := bufio.NewWriter(os.Stdout)
	for _, p := range sel.Partition().Prefixes() {
		fmt.Fprintln(w, p)
	}
	return w.Flush()
}

func runRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required)")
	addrsPath := fs.String("addrs", "", "responsive addresses, one per line (required)")
	universe := fs.String("universe", "more", "prefix universe: less or more")
	top := fs.Int("top", 20, "how many ranks to print")
	fs.Parse(args)
	if *tablePath == "" || *addrsPath == "" {
		return fmt.Errorf("rank: -pfx2as and -addrs are required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	seed, err := loadAddrs(*addrsPath)
	if err != nil {
		return err
	}
	part, err := universeOf(table, *universe)
	if err != nil {
		return err
	}
	ranked := tass.Rank(seed, part)
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "# %d responsive prefixes, %d hosts\n", len(ranked), seed.Hosts())
	fmt.Fprintln(w, "# rank\tprefix\thosts\tdensity\tcoverage")
	for i, st := range ranked {
		if i >= *top {
			break
		}
		fmt.Fprintf(w, "%d\t%v\t%d\t%.3g\t%.4f\n", i+1, st.Prefix, st.Hosts, st.Density, st.Coverage)
	}
	return w.Flush()
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	aPath := fs.String("a", "", "earlier scan's addresses (required)")
	bPath := fs.String("b", "", "later scan's addresses (required)")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	a, err := loadAddrs(*aPath)
	if err != nil {
		return err
	}
	b, err := loadAddrs(*bPath)
	if err != nil {
		return err
	}
	d := tass.DiffSnapshots(a, b)
	fmt.Printf("earlier:   %d hosts\n", a.Hosts())
	fmt.Printf("later:     %d hosts\n", b.Hosts())
	fmt.Printf("kept:      %d\n", d.Kept)
	fmt.Printf("lost:      %d\n", d.Lost)
	fmt.Printf("new:       %d\n", d.New)
	fmt.Printf("retention: %.3f\n", d.Retention())
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required)")
	fs.Parse(args)
	if *tablePath == "" {
		return fmt.Errorf("stats: -pfx2as is required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	s := table.Stats()
	fmt.Printf("prefixes:            %d\n", s.Prefixes)
	fmt.Printf("more-specifics:      %d (%.1f%%)\n", s.MoreSpecifics, 100*s.MoreShare)
	fmt.Printf("announced space:     %d addresses\n", s.Space)
	fmt.Printf("more-specific space: %d addresses (%.1f%%)\n", s.MoreSpace, 100*s.MoreSpaceShare)
	fmt.Printf("l-prefix universe:   %d prefixes\n", table.LessSpecifics().Len())
	fmt.Printf("m-prefix universe:   %d pieces\n", table.Deaggregated().Len())
	return nil
}
