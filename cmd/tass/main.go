// Command tass computes TASS prefix selections from scan results and
// drives the probing engine itself.
//
// Usage:
//
//	tass select -pfx2as TABLE -addrs ADDRS [-phi 0.95] [-universe more]
//	tass select -pfx2as TABLE -census-file FILE [-lazy=false] [-phi 0.95]
//	tass select -6 -prefixes CIDRS -addrs ADDRS [-phi 0.95]
//	tass rank   -pfx2as TABLE (-addrs ADDRS | -census-file FILE) [-top 20]
//	tass stats  -pfx2as TABLE
//	tass convert (-addrs ADDRS | -in SNAPFILE) -o FILE [-verify]
//	tass scan   -targets PREFIXES (-sim ADDRS | -port N) [flags]
//	tass coordinate -listen ADDR -state FILE [-campaign ID -targets PREFIXES] [flags]
//	tass work   -coordinator URL -campaign ID (-sim ADDRS | -port N) [flags]
//
// TABLE is a CAIDA Routeviews pfx2as file; ADDRS is a text file with one
// responsive IPv4 address per line ('#' comments allowed). "select"
// prints the prefixes to scan each cycle, "rank" the densest prefixes,
// "stats" the aggregation structure of the table. "scan" runs the
// sharded scan engine over a prefix list: one checkpointable cycle
// (-checkpoint resumes an interrupted run; -shard/-shards split the
// cycle across machines), or a feedback campaign (-cycles N) that
// re-selects from each cycle's results and scans the tightened plan.
//
// "convert" writes a census into the indexed TASSNAP2 snapshot format,
// which -census-file then opens in O(index) and decodes block by block
// as selection counts over it — a multi-gigabyte census seeds select,
// rank, or a scan campaign without ever being resident in memory. Pass
// -lazy=false to decode the whole file up front instead (faster for
// small censuses that are re-counted many times).
//
// "coordinate" and "work" run the same feedback campaign across a fleet:
// the coordinator owns the campaign state machine (durably, in -state)
// and hands time-bounded shard leases to workers over HTTP; a worker
// that crashes has its shard re-leased from its last uploaded
// checkpoint, and a restarted coordinator resumes mid-campaign from its
// state file. See DESIGN.md §13.
//
// With -6, "select" runs the same engine over IPv6: the universe is an
// announced-prefix list (covered more-specifics are collapsed) and the
// addresses are passive observations or hitlist probes, since there is
// no full IPv6 scan to seed from.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/tass-scan/tass"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "select":
		err = runSelect(os.Args[2:])
	case "rank":
		err = runRank(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	case "scan":
		err = runScan(os.Args[2:])
	case "coordinate":
		err = runCoordinate(os.Args[2:])
	case "work":
		err = runWork(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tass: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tass:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tass select -pfx2as TABLE (-addrs ADDRS | -census-file FILE [-lazy=false])
              [-phi F] [-universe less|more] [-min-density F]
  tass select -6 -prefixes CIDRS -addrs ADDRS [-phi F]
  tass rank   -pfx2as TABLE (-addrs ADDRS | -census-file FILE [-lazy=false])
              [-universe less|more] [-top N]
  tass stats  -pfx2as TABLE
  tass diff   -a ADDRS -b ADDRS
  tass convert (-addrs ADDRS | -in SNAPFILE) -o FILE [-verify]
  tass fsck   [-repair] FILE...
  tass scan   -targets PREFIXES (-sim ADDRS | -port N) [-cycles N] [-phi F]
              [-census-file FILE [-lazy=false]]
              [-incremental] [-rate F] [-burst N] [-workers N]
              [-shard I -shards N] [-checkpoint FILE] [-exclude FILE]
              [-seed N] [-max N] [-loss F]
  tass coordinate -listen ADDR -state FILE [-campaign ID -targets PREFIXES]
              [-cycles N] [-shards N] [-phi F] [-seed N] [-workers N]
              [-lease-ttl D] [-chunk N] [-rate F] [-exclude FILE]
              [-prefix-rate F] [-prefix-burst N]
  tass work   -coordinator URL -campaign ID (-sim ADDRS | -port N)
              [-id NAME] [-loss F] [-seed N] [-exclude FILE]`)
}

func loadTable(path string) (*tass.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tass.ReadPfx2as(f)
}

func loadAddrs(path string) (*tass.Snapshot, error) {
	var addrs []tass.Addr
	err := eachLine(path, func(line int, text string) error {
		a, err := tass.ParseAddr(text)
		if err != nil {
			return fmt.Errorf("%s line %d: %w", path, line, err)
		}
		addrs = append(addrs, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tass.NewSnapshot("scan", 0, addrs), nil
}

// loadSeed loads the seed snapshot of select/rank/scan: from a census
// snapshot file when -census-file is set (an indexed TASSNAP2/3 file
// opens in O(index) and decodes on demand; -lazy=false decodes it up
// front instead; a v1 stream always reads eagerly), otherwise from the
// -addrs text file. With degraded, storage corruption in a lazy census
// is skipped block by block instead of failing the run (the faults are
// reported by reportStorageFaults). The returned cleanup releases the
// file backing a lazy snapshot — the snapshot must not be used after
// it runs.
func loadSeed(addrsPath, censusPath string, lazy, degraded bool) (*tass.Snapshot, func(), error) {
	if censusPath == "" {
		snap, err := loadAddrs(addrsPath)
		return snap, func() {}, err
	}
	snap, err := tass.OpenSnapshotFile(censusPath)
	if err != nil {
		return nil, nil, err
	}
	if degraded {
		snap.SetFaultPolicy(tass.FaultDegrade)
	}
	cleanup := func() { snap.Close() }
	if !lazy {
		// Decode everything now; the materialized view shares the set,
		// so the file stays open until cleanup.
		return snap.Materialize(), cleanup, nil
	}
	return snap, cleanup, nil
}

// reportStorageFaults prints every storage fault a counting pass over
// the seed recorded — under -degraded this is the operator's only
// signal that counts are missing damaged blocks' hosts.
func reportStorageFaults(snap *tass.Snapshot) {
	for _, f := range snap.StorageFaults() {
		fmt.Fprintf(os.Stderr, "# census storage fault (skipped): %v\n", &f)
	}
}

// loadAddrs6 reads IPv6 seed observations, one address per line with
// '#' comments, as produced by passive collection or hitlist probing.
func loadAddrs6(path string) ([]tass.Addr6, error) {
	var addrs []tass.Addr6
	err := eachLine(path, func(line int, text string) error {
		a, err := tass.ParseAddr6(text)
		if err != nil {
			return fmt.Errorf("%s line %d: %w", path, line, err)
		}
		addrs = append(addrs, a)
		return nil
	})
	return addrs, err
}

// loadPrefixes6 reads an announced IPv6 table, one CIDR per line with
// '#' comments. Covered more-specifics are allowed; the universe build
// collapses them.
func loadPrefixes6(path string) ([]tass.Prefix6, error) {
	var ps []tass.Prefix6
	err := eachLine(path, func(line int, text string) error {
		p, err := tass.ParsePrefix6(text)
		if err != nil {
			return fmt.Errorf("%s line %d: %w", path, line, err)
		}
		ps = append(ps, p)
		return nil
	})
	return ps, err
}

// eachLine calls fn for every non-empty line of a text file, with '#'
// comments stripped.
func eachLine(path string, fn func(line int, text string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if err := fn(line, text); err != nil {
			return err
		}
	}
	return sc.Err()
}

func universeOf(t *tass.Table, which string) (tass.Partition, error) {
	switch which {
	case "less", "l":
		return t.LessSpecifics(), nil
	case "more", "m":
		return t.Deaggregated(), nil
	}
	return tass.Partition{}, fmt.Errorf("unknown universe %q (want less or more)", which)
}

func runSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required for IPv4)")
	addrsPath := fs.String("addrs", "", "responsive addresses, one per line (required)")
	phi := fs.Float64("phi", 0.95, "host coverage target φ in (0,1]")
	universe := fs.String("universe", "more", "prefix universe: less or more")
	minDensity := fs.Float64("min-density", 0, "stop below this density (0 = off)")
	censusPath := fs.String("census-file", "", "seed from a census snapshot file (TASSNAP2 or v1) instead of -addrs")
	lazy := fs.Bool("lazy", true, "with -census-file: leave the census on disk and decode blocks on demand")
	degraded := fs.Bool("degraded", false, "with -census-file: skip corrupt census blocks instead of failing (faults reported on stderr)")
	six := fs.Bool("6", false, "IPv6 mode: select over an announced-prefix universe")
	prefixesPath := fs.String("prefixes", "", "announced IPv6 prefixes, one CIDR per line (required with -6)")
	fs.Parse(args)
	if *six {
		return runSelect6(*prefixesPath, *addrsPath, *phi)
	}
	if *tablePath == "" || (*addrsPath == "") == (*censusPath == "") {
		return fmt.Errorf("select: -pfx2as and exactly one of -addrs and -census-file are required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	seed, cleanup, err := loadSeed(*addrsPath, *censusPath, *lazy, *degraded)
	if err != nil {
		return err
	}
	defer cleanup()
	part, err := universeOf(table, *universe)
	if err != nil {
		return err
	}
	sel, err := tass.Select(seed, part, tass.Options{Phi: *phi, MinDensity: *minDensity})
	reportStorageFaults(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s\n", tass.Describe(sel))
	w := bufio.NewWriter(os.Stdout)
	for _, p := range sel.Partition().Prefixes() {
		fmt.Fprintln(w, p)
	}
	return w.Flush()
}

// runSelect6 is the IPv6 half of "tass select": the universe comes
// from an announced-prefix list instead of a pfx2as table (covered
// more-specifics are collapsed, the l-prefix view), the seeds from
// passive observations or hitlist probes rather than a full scan.
func runSelect6(prefixesPath, addrsPath string, phi float64) error {
	if prefixesPath == "" || addrsPath == "" {
		return fmt.Errorf("select -6: -prefixes and -addrs are required")
	}
	announced, err := loadPrefixes6(prefixesPath)
	if err != nil {
		return err
	}
	u, err := tass.NewUniverse6FromAnnounced(announced)
	if err != nil {
		return err
	}
	seeds, err := loadAddrs6(addrsPath)
	if err != nil {
		return err
	}
	sel, err := tass.Select6(seeds, u, phi)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# %s\n", tass.Describe6(sel))
	w := bufio.NewWriter(os.Stdout)
	for _, p := range sel.Prefixes() {
		fmt.Fprintln(w, p)
	}
	return w.Flush()
}

func runRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required)")
	addrsPath := fs.String("addrs", "", "responsive addresses, one per line (required)")
	universe := fs.String("universe", "more", "prefix universe: less or more")
	top := fs.Int("top", 20, "how many ranks to print")
	censusPath := fs.String("census-file", "", "seed from a census snapshot file (TASSNAP2 or v1) instead of -addrs")
	lazy := fs.Bool("lazy", true, "with -census-file: leave the census on disk and decode blocks on demand")
	degraded := fs.Bool("degraded", false, "with -census-file: skip corrupt census blocks instead of failing (faults reported on stderr)")
	fs.Parse(args)
	if *tablePath == "" || (*addrsPath == "") == (*censusPath == "") {
		return fmt.Errorf("rank: -pfx2as and exactly one of -addrs and -census-file are required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	seed, cleanup, err := loadSeed(*addrsPath, *censusPath, *lazy, *degraded)
	if err != nil {
		return err
	}
	defer cleanup()
	part, err := universeOf(table, *universe)
	if err != nil {
		return err
	}
	ranked := tass.Rank(seed, part)
	reportStorageFaults(seed)
	if err := seed.StorageErr(); err != nil {
		return fmt.Errorf("rank: census storage fault: %w", err)
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "# %d responsive prefixes, %d hosts\n", len(ranked), seed.Hosts())
	fmt.Fprintln(w, "# rank\tprefix\thosts\tdensity\tcoverage")
	for i, st := range ranked {
		if i >= *top {
			break
		}
		fmt.Fprintf(w, "%d\t%v\t%d\t%.3g\t%.4f\n", i+1, st.Prefix, st.Hosts, st.Density, st.Coverage)
	}
	return w.Flush()
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	aPath := fs.String("a", "", "earlier scan's addresses (required)")
	bPath := fs.String("b", "", "later scan's addresses (required)")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	a, err := loadAddrs(*aPath)
	if err != nil {
		return err
	}
	b, err := loadAddrs(*bPath)
	if err != nil {
		return err
	}
	d := tass.DiffSnapshots(a, b)
	fmt.Printf("earlier:   %d hosts\n", a.Hosts())
	fmt.Printf("later:     %d hosts\n", b.Hosts())
	fmt.Printf("kept:      %d\n", d.Kept)
	fmt.Printf("lost:      %d\n", d.Lost)
	fmt.Printf("new:       %d\n", d.New)
	fmt.Printf("retention: %.3f\n", d.Retention())
	return nil
}

// runConvert writes a census into the indexed TASSNAP2 snapshot format:
// either a text address list (-addrs, decoded and sorted in memory) or
// a binary v1 snapshot stream (-in, converted block-by-block without
// ever materializing the address slice — the path for censuses larger
// than RAM). The output opens in O(index) via -census-file.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	addrsPath := fs.String("addrs", "", "text addresses, one per line")
	inPath := fs.String("in", "", "binary v1 snapshot stream (Snapshot.WriteTo bytes)")
	outPath := fs.String("o", "", "output indexed snapshot file (required)")
	verify := fs.Bool("verify", false, "deep-check the written file: checksums plus a full decode")
	fs.Parse(args)
	if *outPath == "" {
		return fmt.Errorf("convert: -o is required")
	}
	if (*addrsPath == "") == (*inPath == "") {
		return fmt.Errorf("convert: exactly one of -addrs and -in is required")
	}
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		err = tass.ConvertSnapshotFile(bufio.NewReader(f), *outPath)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		snap, err := loadAddrs(*addrsPath)
		if err != nil {
			return err
		}
		if err := tass.WriteSnapshotFile(*outPath, snap); err != nil {
			return err
		}
	}
	if *verify {
		if err := tass.VerifySnapshotFile(*outPath); err != nil {
			return err
		}
	}
	snap, err := tass.OpenSnapshotFile(*outPath)
	if err != nil {
		return err
	}
	defer snap.Close()
	fmt.Fprintf(os.Stderr, "# %s: %d hosts (%s, month %d)\n",
		*outPath, snap.Hosts(), snap.Protocol, snap.Month)
	return nil
}

// runFsck scrubs (and with -repair fixes) tass on-disk artifacts —
// snapshot files, scan checkpoints, coordinator state — sniffing each
// file's kind from its leading bytes. Exit status: 0 when every file is
// clean (or was repaired), 1 when damage remains.
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "re-derive intact snapshot blocks into a fresh file, upgrade legacy checkpoints, quarantine what cannot be salvaged")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("fsck: at least one file is required")
	}
	damaged := 0
	for _, path := range fs.Args() {
		var res *tass.FsckResult
		var err error
		if *repair {
			res, err = tass.FsckRepair(path)
		} else {
			res, err = tass.FsckCheck(path)
		}
		if err != nil {
			return fmt.Errorf("fsck: %s: %w", path, err)
		}
		switch {
		case res.Clean:
			fmt.Printf("%s: %s: clean\n", path, res.Kind)
		case res.Repaired:
			fmt.Printf("%s: %s: repaired\n", path, res.Kind)
		default:
			fmt.Printf("%s: %s: DAMAGED\n", path, res.Kind)
			damaged++
		}
		for _, f := range res.Findings {
			fmt.Printf("  %s\n", f)
		}
		if res.QuarantinePath != "" {
			fmt.Printf("  quarantined: %s\n", res.QuarantinePath)
		}
		if res.Repaired && res.Kind == "snapshot" {
			fmt.Printf("  recovered %d addresses, lost %d\n", res.RecoveredHosts, res.LostAddrs)
		}
	}
	if damaged > 0 {
		return fmt.Errorf("fsck: %d file(s) damaged (run with -repair to salvage)", damaged)
	}
	return nil
}

// runScan drives the probing engine: a single sharded, checkpointable
// scan cycle, or a multi-cycle feedback campaign (scan → select → scan
// the tightened plan). Responsive addresses go to stdout, one per line,
// ready for `tass select -addrs`.
func runScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	targetsPath := fs.String("targets", "", "prefixes to scan, one CIDR per line (required)")
	simPath := fs.String("sim", "", "simulate against this responsive-address file instead of real probes")
	loss := fs.Float64("loss", 0, "simulated probe loss rate in [0,1) (with -sim)")
	port := fs.Int("port", 0, "TCP connect port for real probes (careful: scan only networks you own)")
	cycles := fs.Int("cycles", 1, "feedback cycles: >1 re-selects from each cycle's results")
	phi := fs.Float64("phi", 0.95, "host coverage target φ for re-selection (with -cycles > 1)")
	incremental := fs.Bool("incremental", false, "re-select by applying each cycle's scan-result delta to a maintained ranking (with -cycles > 1; plans are identical either way)")
	censusPath := fs.String("census-file", "", "seed cycle 0 from this census snapshot file instead of scanning the full universe first (with -cycles > 1)")
	lazyCensus := fs.Bool("lazy", true, "with -census-file: leave the census on disk and decode blocks on demand")
	degraded := fs.Bool("degraded", false, "with -census-file: skip corrupt census blocks in the seed selection instead of failing (faults reported on stderr)")
	rate := fs.Float64("rate", 0, "probes per second (0 = unlimited)")
	burst := fs.Int("burst", 0, "rate limiter burst (default 64)")
	workers := fs.Int("workers", 0, "concurrent probe workers (default 16)")
	shard := fs.Int("shard", 0, "this instance's shard index (with -shards)")
	shards := fs.Int("shards", 1, "total shard count across scanner instances")
	checkpointPath := fs.String("checkpoint", "", "resume from this cursor file if it exists; write it on interruption")
	excludePath := fs.String("exclude", "", "ZMap-style exclusion file")
	reloadExclude := fs.Duration("reload-exclude", 0, "poll the -exclude file at this interval and apply changes mid-cycle (single cycle only)")
	seed := fs.Int64("seed", 1, "permutation seed (all shards of one scan must agree)")
	max := fs.Uint64("max", 0, "stop after this many probes (sampling mode)")
	pfx2asPath := fs.String("pfx2as", "", "CAIDA prefix-to-AS table mapping targets to origin ASes (required by the per-AS politeness flags)")
	asRate := fs.Float64("as-rate", 0, "probes per second into any single origin AS (0 = off; needs -pfx2as)")
	asBurst := fs.Int("as-burst", 0, "per-AS bucket burst (default 16)")
	prefixRate := fs.Float64("prefix-rate", 0, "probes per second into any single target prefix (0 = off)")
	prefixBurst := fs.Int("prefix-burst", 0, "per-prefix bucket burst (default 8)")
	budget := fs.Uint64("budget", 0, "max probes per origin AS per cycle, held across checkpoint resumes (needs -pfx2as)")
	backoffN := fs.Int("backoff", 0, "consecutive errors inside one AS that halve its rate (needs -as-rate)")
	footprint := fs.Bool("footprint", false, "print the per-origin-AS footprint table to stderr (needs -pfx2as)")
	fs.Parse(args)

	if *targetsPath == "" {
		return fmt.Errorf("scan: -targets is required")
	}
	if (*simPath == "") == (*port == 0) {
		return fmt.Errorf("scan: exactly one of -sim and -port is required")
	}
	if *checkpointPath != "" && *cycles > 1 {
		return fmt.Errorf("scan: -checkpoint applies to single cycles only (selection state is not checkpointed)")
	}
	if *cycles > 1 && *shards > 1 {
		return fmt.Errorf("scan: -shards applies to single cycles only (a sharded campaign would re-select from partial scan results; merge shard outputs and re-select instead)")
	}
	if *cycles > 1 && *max > 0 {
		return fmt.Errorf("scan: -max applies to single cycles only (campaign cycles scan their full plan)")
	}
	if *incremental && *cycles <= 1 {
		return fmt.Errorf("scan: -incremental applies to campaigns (-cycles > 1); a single cycle has no prior ranking to repair")
	}
	if *censusPath != "" && *cycles <= 1 {
		return fmt.Errorf("scan: -census-file seeds a campaign's first selection (-cycles > 1); a single cycle scans -targets directly")
	}
	if *reloadExclude > 0 && *excludePath == "" {
		return fmt.Errorf("scan: -reload-exclude needs -exclude (the file to poll)")
	}
	if *reloadExclude > 0 && *cycles > 1 {
		return fmt.Errorf("scan: -reload-exclude applies to single cycles only (campaign cycles reload their list at cycle start)")
	}
	pol := tass.ScanPoliteness{
		ASRate:      *asRate,
		ASBurst:     *asBurst,
		PrefixRate:  *prefixRate,
		PrefixBurst: *prefixBurst,
		ASBudget:    *budget,
		Backoff:     tass.ScanBackoff{Threshold: *backoffN},
		Footprint:   *footprint,
	}
	perAS := *asRate > 0 || *budget > 0 || *backoffN > 0 || *footprint
	if perAS && *pfx2asPath == "" {
		return fmt.Errorf("scan: -as-rate/-budget/-backoff/-footprint need -pfx2as to map targets to origin ASes")
	}
	var asTable *tass.Table
	if *pfx2asPath != "" {
		f, err := os.Open(*pfx2asPath)
		if err != nil {
			return err
		}
		asTable, err = tass.ReadPfx2as(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *pfx2asPath, err)
		}
	}

	prefixes, err := loadPrefixFile(*targetsPath)
	if err != nil {
		return err
	}
	targets, err := tass.NewPartition(prefixes)
	if err != nil {
		return err
	}
	var prober tass.Prober
	if *simPath != "" {
		snap, err := loadAddrs(*simPath)
		if err != nil {
			return err
		}
		prober, err = tass.NewSimProber(snap.Addrs, *loss, *seed)
		if err != nil {
			return err
		}
	} else {
		prober = &tass.TCPProber{Port: *port, Timeout: 2 * time.Second}
	}
	var exclude []tass.Prefix
	if *excludePath != "" {
		if exclude, err = loadPrefixFile(*excludePath); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cycles > 1 {
		var seedSnap *tass.Snapshot
		if *censusPath != "" {
			var cleanup func()
			if seedSnap, cleanup, err = loadSeed("", *censusPath, *lazyCensus, *degraded); err != nil {
				return err
			}
			defer cleanup()
			fmt.Fprintf(os.Stderr, "# seeding cycle 0 from %s: %d hosts\n", *censusPath, seedSnap.Hosts())
		}
		c := &tass.ScanCampaign{
			Universe:      targets,
			SeedSnapshot:  seedSnap,
			DegradedReads: *degraded,
			OnStorageFault: func(f tass.BlockError) {
				fmt.Fprintf(os.Stderr, "# census storage fault (skipped): %v\n", &f)
			},
			Prober:      prober,
			Opts:        tass.Options{Phi: *phi},
			Rate:        *rate,
			Burst:       *burst,
			Workers:     *workers,
			Seed:        *seed,
			Exclude:     exclude,
			Politeness:  pol,
			Cache:       tass.NewCountCache(),
			Incremental: *incremental,
		}
		if asTable != nil {
			c.OriginsOf = asTable.OriginsOf
		}
		done, err := c.Run(ctx, *cycles)
		for _, cy := range done {
			fmt.Fprintf(os.Stderr, "# cycle %d: %d prefixes, %d probed, %d responsive, hitrate %.4f, cost share %.3f\n",
				cy.Index, cy.Plan.Len(), cy.Report.Probed, cy.Snapshot.Hosts(),
				cy.Report.Hitrate(), cy.CostShare(targets))
			if *footprint {
				fmt.Fprintf(os.Stderr, "# cycle %d footprint:\n", cy.Index)
				if err := tass.WriteFootprint(os.Stderr, cy.Plan, asTable.OriginsOf(cy.Plan), cy.Report); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
		w := bufio.NewWriter(os.Stdout)
		last := done[len(done)-1]
		for _, a := range last.Snapshot.Addrs {
			fmt.Fprintln(w, a)
		}
		return w.Flush()
	}

	if asTable != nil {
		pol.Origins = asTable.OriginsOf(targets)
	}
	scanner, err := tass.NewScanner(tass.ScanConfig{
		Targets:    targets,
		Prober:     prober,
		Rate:       *rate,
		Burst:      *burst,
		Workers:    *workers,
		Seed:       *seed,
		Shard:      *shard,
		Shards:     *shards,
		Exclude:    exclude,
		MaxProbes:  *max,
		Politeness: pol,
	})
	if err != nil {
		return err
	}
	if *checkpointPath != "" {
		cp, err := tass.ReadScanCheckpointFile(*checkpointPath)
		switch {
		case err == nil:
			if err := scanner.Resume(cp); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# resuming from %s\n", *checkpointPath)
		case !os.IsNotExist(err):
			// A torn or corrupt cursor is refused loudly: silently starting
			// over would re-probe everything the interrupted run covered.
			return fmt.Errorf("checkpoint %s: %w", *checkpointPath, err)
		}
	}
	if *reloadExclude > 0 {
		r := tass.NewExclusionReloader(scanner, *excludePath, *reloadExclude)
		r.OnReload = func(n int, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "# exclusion reload failed: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "# exclusion list reloaded: %d prefixes\n", n)
		}
		rctx, rstop := context.WithCancel(ctx)
		defer rstop()
		go r.Run(rctx)
	}
	report, runErr := scanner.Run(ctx)
	if report != nil {
		fmt.Fprintf(os.Stderr, "# %d probed, %d excluded, %d errors, %d budget-denied, %d responsive, hitrate %.4f, %v elapsed\n",
			report.Probed, report.Excluded, report.Errors, report.BudgetDenied, len(report.Responsive),
			report.Hitrate(), report.Elapsed.Round(time.Millisecond))
		if *footprint {
			if err := tass.WriteFootprint(os.Stderr, targets, pol.Origins, report); err != nil {
				return err
			}
		}
		w := bufio.NewWriter(os.Stdout)
		for _, a := range report.Responsive {
			fmt.Fprintln(w, a)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if runErr == nil && *checkpointPath != "" {
		// A completed cycle invalidates the cursor: leaving the file
		// behind would make the next run of the same command silently
		// resume mid-cycle and skip the front of the target space.
		if err := os.Remove(*checkpointPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if runErr != nil && *checkpointPath != "" {
		if cp := scanner.Checkpoint(); cp != nil {
			// Atomic save: a crash while writing the cursor must leave the
			// previous checkpoint intact, never a torn file.
			if err := tass.WriteScanCheckpointFile(*checkpointPath, cp); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# interrupted: cursor saved to %s; rerun the same command to resume\n", *checkpointPath)
		}
	}
	return runErr
}

// runCoordinate serves the distributed-campaign coordinator: durable
// state in -state, shard leases over HTTP. A restart over the same
// state file resumes every campaign, lease and cycle mid-flight.
func runCoordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to serve the coordinator API on")
	statePath := fs.String("state", "", "durable state file (required; a restart resumes from it)")
	campaign := fs.String("campaign", "", "campaign ID to register at startup (requires -targets)")
	targetsPath := fs.String("targets", "", "prefix list file: the campaign universe")
	cycles := fs.Int("cycles", 3, "scan-and-reselect cycles")
	shards := fs.Int("shards", 2, "shard leases per cycle (fleet parallelism)")
	phi := fs.Float64("phi", 0.95, "host coverage target φ for each re-selection")
	seed := fs.Int64("seed", 1, "cycle-0 permutation seed")
	workers := fs.Int("workers", 4, "scanner workers inside each leased shard (fixed per campaign)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease duration; a silent worker's shard is re-leased after this")
	chunk := fs.Uint64("chunk", 256, "probes per checkpoint chunk (bounds repeated work after a hard crash)")
	rate := fs.Float64("rate", 0, "per-worker probes/second cap (0 = unlimited)")
	excludePath := fs.String("exclude", "", "ZMap-style exclusion file; distributed to every worker in each lease")
	prefixRate := fs.Float64("prefix-rate", 0, "per-worker probes/second cap into any single target prefix (0 = off)")
	prefixBurst := fs.Int("prefix-burst", 0, "per-prefix bucket burst (default 8)")
	fs.Parse(args)
	if *statePath == "" {
		return fmt.Errorf("coordinate: -state is required")
	}
	c, err := tass.NewCoordinator(tass.NewCoordFileStore(*statePath), nil)
	if err != nil {
		return err
	}
	if *campaign != "" {
		if *targetsPath == "" {
			return fmt.Errorf("coordinate: -campaign requires -targets")
		}
		prefixes, err := loadPrefixFile(*targetsPath)
		if err != nil {
			return err
		}
		universe := make([]string, len(prefixes))
		for i, p := range prefixes {
			universe[i] = p.String()
		}
		var exclude []string
		if *excludePath != "" {
			ps, err := loadPrefixFile(*excludePath)
			if err != nil {
				return err
			}
			exclude = make([]string, len(ps))
			for i, p := range ps {
				exclude[i] = p.String()
			}
		}
		err = c.CreateCampaign(tass.CoordSpec{
			ID:          *campaign,
			Universe:    universe,
			Phi:         *phi,
			Cycles:      *cycles,
			Shards:      *shards,
			Workers:     *workers,
			Seed:        *seed,
			Rate:        *rate,
			Exclude:     exclude,
			PrefixRate:  *prefixRate,
			PrefixBurst: *prefixBurst,
			LeaseTTL:    *leaseTTL,
			ChunkProbes: *chunk,
		})
		switch {
		case errors.Is(err, tass.ErrCampaignExists):
			// Restart over existing state: the campaign is already
			// registered and possibly mid-flight; just keep serving it.
			fmt.Fprintf(os.Stderr, "# campaign %s already in state file; resuming it\n", *campaign)
		case err != nil:
			return err
		default:
			fmt.Fprintf(os.Stderr, "# campaign %s registered: %d prefixes, %d cycles, %d shards\n",
				*campaign, len(universe), *cycles, *shards)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{Addr: *listen, Handler: tass.NewCoordHandler(c)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "# coordinator listening on %s (state: %s)\n", *listen, *statePath)
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	case err := <-errc:
		return err
	}
}

// runWork runs one campaign worker against a coordinator: acquire a
// shard lease, scan it in checkpointable chunks, upload the cursor at
// every chunk boundary, repeat until the campaign is done.
func runWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordURL := fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:7070 (required)")
	campaign := fs.String("campaign", "", "campaign ID to work on (required)")
	id := fs.String("id", "", "worker name in leases and logs (default worker-<pid>)")
	simPath := fs.String("sim", "", "simulate probes against this responsive-address file")
	port := fs.Int("port", 0, "TCP port to probe (real scanning)")
	loss := fs.Float64("loss", 0, "simulated probe loss rate")
	seed := fs.Int64("seed", 1, "simulation prober seed (cycle i uses seed+i)")
	excludePath := fs.String("exclude", "", "ZMap-style exclusion file applied locally, on top of the campaign's list")
	fs.Parse(args)
	if *coordURL == "" || *campaign == "" {
		return fmt.Errorf("work: -coordinator and -campaign are required")
	}
	if (*simPath == "") == (*port == 0) {
		return fmt.Errorf("work: exactly one of -sim or -port is required")
	}
	name := *id
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	w := &tass.CoordWorker{
		Client:   tass.NewCoordClient(*coordURL),
		ID:       name,
		Campaign: *campaign,
		OnEvent: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# [%s] %s\n", name, fmt.Sprintf(format, args...))
		},
	}
	if *excludePath != "" {
		ps, err := loadPrefixFile(*excludePath)
		if err != nil {
			return err
		}
		w.Exclude = ps
	}
	if *simPath != "" {
		snap, err := loadAddrs(*simPath)
		if err != nil {
			return err
		}
		if _, err := tass.NewSimProber(snap.Addrs, *loss, *seed); err != nil {
			return err
		}
		w.ProberAt = func(cycle int) tass.Prober {
			p, _ := tass.NewSimProber(snap.Addrs, *loss, *seed+int64(cycle))
			return p
		}
	} else {
		w.Prober = &tass.TCPProber{Port: *port, Timeout: 2 * time.Second}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// loadPrefixFile parses one CIDR prefix (or bare address) per line, with
// '#' comments — the same grammar as ZMap exclusion files.
func loadPrefixFile(path string) ([]tass.Prefix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ps, err := tass.ParseExclusions(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ps, nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	tablePath := fs.String("pfx2as", "", "CAIDA pfx2as table (required)")
	fs.Parse(args)
	if *tablePath == "" {
		return fmt.Errorf("stats: -pfx2as is required")
	}
	table, err := loadTable(*tablePath)
	if err != nil {
		return err
	}
	s := table.Stats()
	fmt.Printf("prefixes:            %d\n", s.Prefixes)
	fmt.Printf("more-specifics:      %d (%.1f%%)\n", s.MoreSpecifics, 100*s.MoreShare)
	fmt.Printf("announced space:     %d addresses\n", s.Space)
	fmt.Printf("more-specific space: %d addresses (%.1f%%)\n", s.MoreSpace, 100*s.MoreSpaceShare)
	fmt.Printf("l-prefix universe:   %d prefixes\n", table.LessSpecifics().Len())
	fmt.Printf("m-prefix universe:   %d pieces\n", table.Deaggregated().Len())
	return nil
}
