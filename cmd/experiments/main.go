// Command experiments regenerates every table and figure of the TASS
// paper on the synthetic universe and prints them as text tables.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-months N] [-workers N]
//	            [-countcache] [-countcachecap N] [-blocksize N]
//	            [-prebuildsets] [-incremental]
//	            [-cpuprofile F] [-memprofile F] [-run id,id,...] [-list]
//
// -scale 1.0 (default) is the paper-scale universe (≈3.7 B allocated
// addresses, ≈7 M hosts; a run takes tens of seconds). Use -scale 0.01
// for a quick pass. -workers bounds the goroutines used for world
// building (striped churn included) and the experiment pool (default:
// GOMAXPROCS); any worker count produces identical output. -countcache
// (default true) shares one per-(snapshot, partition) count memo
// across all experiments, -blocksize tunes the block-indexed
// address-set layout, and -prebuildsets builds snapshot set indexes
// eagerly during world building; none of them changes a digit of any
// result. -cpuprofile/-memprofile record runtime/pprof profiles for
// hot-path work. -list prints the experiment IDs and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"github.com/tass-scan/tass/internal/addrset"
	"github.com/tass-scan/tass/internal/experiment"
	"github.com/tass-scan/tass/internal/prof"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "universe seed (churn uses seed+1)")
		scale      = flag.Float64("scale", 1.0, "universe scale: 1.0 = paper scale")
		months     = flag.Int("months", 6, "churn months (paper: 6 → 7 snapshots)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines (output is identical at any count)")
		run        = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		countcache = flag.Bool("countcache", true, "memoize per-(snapshot,partition) host counts across experiments (output is identical either way)")
		cachecap   = flag.Int("countcachecap", 0, "LRU entry cap of the count cache: 0 = default bound, negative = unbounded")
		increment  = flag.Bool("incremental", false, "build the monthly series through the churn-native delta pipeline and reseed campaigns incrementally (output is identical either way)")
		blocksize  = flag.Int("blocksize", addrset.DefaultBlockSize, "addresses per block in the block-indexed set layout")
		prebuild   = flag.Bool("prebuildsets", false, "build snapshot set indexes eagerly during world building (output is identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if *blocksize > 0 {
		addrset.DefaultBlockSize = *blocksize
	}
	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// os.Exit skips defers, so every exit path below must flush the
	// profile explicitly — failing runs are exactly the ones profiled.
	fail := func(err error) {
		stopCPU()
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopCPU()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt, unregister so a second Ctrl-C
		// terminates immediately instead of waiting for in-flight
		// experiments to drain.
		<-ctx.Done()
		stop()
	}()

	cfg := experiment.Config{
		Seed: *seed, Months: *months, Scale: *scale, Workers: *workers,
		NoCountCache: !*countcache, CountCacheCap: *cachecap,
		PrebuildSets: *prebuild, Incremental: *increment,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "building universe (seed=%d scale=%g months=%d workers=%d)...\n",
		*seed, *scale, *months, *workers)
	w, err := experiment.BuildWorld(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "world ready in %v: %d announced prefixes, %d l-prefixes, %d m-pieces\n",
		time.Since(start).Round(time.Millisecond),
		w.U.Table.Len(), w.U.Less.Len(), w.U.More.Len())

	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	// Results stream in report order as they complete; on failure or
	// Ctrl-C the completed prefix has already been printed.
	err = experiment.StreamAll(ctx, w, func(res experiment.Result) {
		fmt.Println(res.String())
	}, ids...)
	if err != nil {
		fail(err)
	}
	if hits, misses := w.Cache.Stats(); hits+misses > 0 {
		fmt.Fprintf(os.Stderr, "count cache: %d hits, %d misses\n", hits, misses)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
