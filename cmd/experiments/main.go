// Command experiments regenerates every table and figure of the TASS
// paper on the synthetic universe and prints them as text tables.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-months N] [-run id,id,...] [-list]
//
// -scale 1.0 (default) is the paper-scale universe (≈3.7 B allocated
// addresses, ≈7 M hosts; a run takes tens of seconds). Use -scale 0.01
// for a quick pass. -list prints the experiment IDs and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tass-scan/tass/internal/experiment"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "universe seed (churn uses seed+1)")
		scale  = flag.Float64("scale", 1.0, "universe scale: 1.0 = paper scale")
		months = flag.Int("months", 6, "churn months (paper: 6 → 7 snapshots)")
		run    = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiment.Config{Seed: *seed, Months: *months, Scale: *scale}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "building universe (seed=%d scale=%g months=%d)...\n",
		*seed, *scale, *months)
	w, err := experiment.BuildWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "world ready in %v: %d announced prefixes, %d l-prefixes, %d m-pieces\n",
		time.Since(start).Round(time.Millisecond),
		w.U.Table.Len(), w.U.Less.Len(), w.U.More.Len())

	ids := experiment.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		res, err := experiment.Run(w, strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(res.String())
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
