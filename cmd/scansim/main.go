// Command scansim generates a synthetic announced Internet, simulates
// monthly churn, and writes the resulting census snapshot series plus the
// announced table — the offline stand-in for six months of censys.io
// full-IPv4 scans.
//
// Usage:
//
//	scansim -out DIR [-seed N] [-scale F] [-months N] [-workers N]
//
// DIR receives one <protocol>.census file (back-to-back binary
// snapshots, see the census package) and announced.pfx2as.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/prof"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (required)")
		seed       = flag.Int64("seed", 1, "generation seed (churn uses seed+1)")
		scale      = flag.Float64("scale", 0.05, "universe scale (1.0 = paper scale)")
		months     = flag.Int("months", 6, "churn months (writes months+1 snapshots)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines (output is identical at any count)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "scansim: -out is required")
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
	if err := run(*out, *seed, *scale, *months, *workers); err != nil {
		stopCPU()
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
	stopCPU()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
}

func run(dir string, seed int64, scale float64, months, workers int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	cfg := tass.ScaledUniverseConfig(seed, scale)
	cfg.Workers = workers
	u, err := tass.GenerateUniverse(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "universe: %d announced prefixes, %d l-prefixes, %.2g addresses announced\n",
		u.Table.Len(), u.Less.Len(), float64(u.Less.AddressCount()))

	tablePath := filepath.Join(dir, "announced.pfx2as")
	tf, err := os.Create(tablePath)
	if err != nil {
		return err
	}
	if err := tass.WritePfx2as(tf, u.Table); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	series := tass.SimulateMonthsWorkers(u, seed+1, months, workers)
	for _, name := range u.Protocols() {
		path := filepath.Join(dir, name+".census")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := series[name].WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d snapshots, %d hosts at month 0 -> %s\n",
			name, series[name].Months(), series[name].At(0).Hosts(), path)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
