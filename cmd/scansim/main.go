// Command scansim generates a synthetic announced Internet, simulates
// monthly churn, and writes the resulting census snapshot series plus the
// announced table — the offline stand-in for six months of censys.io
// full-IPv4 scans.
//
// Usage:
//
//	scansim -out DIR [-seed N] [-scale F] [-months N] [-workers N]
//	        [-incremental] [-scancycles N] [-scanproto P] [-scanphi F]
//	        [-scanloss F]
//
// DIR receives one <protocol>.census file (back-to-back binary
// snapshots, see the census package) and announced.pfx2as. With
// -scancycles > 0 scansim additionally closes the paper's loop against
// its own ground truth: the sharded scan engine runs a lossy simulated
// feedback campaign (full seed scan, then scan-select-rescan, one cycle
// per churned month) and reports per-cycle hitrate and cost.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tass-scan/tass"
	"github.com/tass-scan/tass/internal/prof"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (required)")
		seed       = flag.Int64("seed", 1, "generation seed (churn uses seed+1)")
		scale      = flag.Float64("scale", 0.05, "universe scale (1.0 = paper scale)")
		months     = flag.Int("months", 6, "churn months (writes months+1 snapshots)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines (output is identical at any count)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		increment  = flag.Bool("incremental", false, "derive monthly snapshots (and campaign reseeds) through the delta pipeline; output is identical either way")
		scanCycles = flag.Int("scancycles", 0, "simulate a live feedback scan campaign with this many cycles (0 = off)")
		scanProto  = flag.String("scanproto", "ftp", "protocol the campaign probes")
		scanPhi    = flag.Float64("scanphi", 0.95, "host coverage target φ for campaign re-selection")
		scanLoss   = flag.Float64("scanloss", 0.03, "simulated probe loss rate in [0,1)")
		scanBudget = flag.Uint64("scanbudget", 0, "campaign probe budget per origin AS per cycle (0 = unlimited); prints the per-AS footprint summary")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "scansim: -out is required")
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
	if err := run(*out, *seed, *scale, *months, *workers, *increment, campaignConfig{
		cycles: *scanCycles,
		proto:  *scanProto,
		phi:    *scanPhi,
		loss:   *scanLoss,
		budget: *scanBudget,
	}); err != nil {
		stopCPU()
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
	stopCPU()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(1)
	}
}

// campaignConfig parameterizes the optional scan-in-the-loop pass.
type campaignConfig struct {
	cycles int
	proto  string
	phi    float64
	loss   float64
	budget uint64
}

func run(dir string, seed int64, scale float64, months, workers int, incremental bool, camp campaignConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	cfg := tass.ScaledUniverseConfig(seed, scale)
	cfg.Workers = workers
	u, err := tass.GenerateUniverse(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "universe: %d announced prefixes, %d l-prefixes, %.2g addresses announced\n",
		u.Table.Len(), u.Less.Len(), float64(u.Less.AddressCount()))

	tablePath := filepath.Join(dir, "announced.pfx2as")
	tf, err := os.Create(tablePath)
	if err != nil {
		return err
	}
	if err := tass.WritePfx2as(tf, u.Table); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	series := tass.SimulateSeries(u, seed+1, months, tass.SimConfig{Workers: workers, Incremental: incremental})
	for _, name := range u.Protocols() {
		path := filepath.Join(dir, name+".census")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := series[name].WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d snapshots, %d hosts at month 0 -> %s\n",
			name, series[name].Months(), series[name].At(0).Hosts(), path)
	}
	if camp.cycles > 0 {
		if err := runCampaign(u, series, camp, seed, workers, incremental); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runCampaign closes the loop against the freshly generated ground
// truth: cycle i probes the month-i snapshot (the last month repeats
// once the series runs out) through a lossy simulated prober, and every
// cycle's results seed the next cycle's selection.
func runCampaign(u *tass.Universe, series map[string]*tass.Series, camp campaignConfig, seed int64, workers int, incremental bool) error {
	truth, ok := series[camp.proto]
	if !ok {
		return fmt.Errorf("campaign: unknown protocol %q", camp.proto)
	}
	c := &tass.ScanCampaign{
		Universe: u.More,
		ProberAt: func(cycle int) tass.Prober {
			m := cycle
			if m >= truth.Months() {
				m = truth.Months() - 1
			}
			// Per-cycle seed: loss is transient per scan, not a permanent
			// property of an address.
			p, err := tass.NewSimProber(truth.At(m).Addrs, camp.loss, seed+900+int64(cycle))
			if err != nil {
				panic(err) // loss validated below before Run
			}
			return p
		},
		Opts:        tass.Options{Phi: camp.phi},
		Workers:     workers,
		Seed:        seed + 901,
		Cache:       tass.NewCountCache(),
		Protocol:    camp.proto,
		Incremental: incremental,
	}
	if camp.budget > 0 {
		// The synthetic table carries synthetic origins: the budget and
		// footprint machinery runs exactly as it would on a real pfx2as.
		c.Politeness = tass.ScanPoliteness{ASBudget: camp.budget, Footprint: true}
		c.OriginsOf = u.Table.OriginsOf
	}
	if _, err := tass.NewSimProber(nil, camp.loss, 0); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	fmt.Fprintf(os.Stderr, "campaign: %s over %d m-prefixes, φ=%.2f, %.0f%% loss\n",
		camp.proto, u.More.Len(), camp.phi, 100*camp.loss)
	cycles, err := c.Run(context.Background(), camp.cycles)
	for _, cy := range cycles {
		m := cy.Index
		if m >= truth.Months() {
			m = truth.Months() - 1
		}
		fmt.Fprintf(os.Stderr, "  cycle %d: %6d pfx, %12d probed, %8d found, hitrate vs truth %.3f, cost share %.3f\n",
			cy.Index, cy.Plan.Len(), cy.Report.Probed, cy.Snapshot.Hosts(),
			cy.Hitrate(truth.At(m)), cy.CostShare(u.More))
		if camp.budget > 0 && cy.Report.PerAS != nil {
			capped := 0
			for _, st := range cy.Report.PerAS {
				if st.BudgetDenied > 0 {
					capped++
				}
			}
			fmt.Fprintf(os.Stderr, "           budget %d/AS: %d ASes touched, %d capped, %d probes denied\n",
				camp.budget, len(cy.Report.PerAS), capped, cy.Report.BudgetDenied)
		}
	}
	return err
}
