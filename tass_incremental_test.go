package tass_test

import (
	"bytes"
	"slices"
	"testing"

	"github.com/tass-scan/tass"
)

// TestPublicDeltaPipeline exercises the exported incremental surface
// end to end: simulate with native deltas, reconstruct the series by
// ApplyDelta, ship a delta through the wire codec, and keep an
// IncrementalSelector byte-identical to full selections.
func TestPublicDeltaPipeline(t *testing.T) {
	u, err := tass.GenerateUniverse(tass.ScaledUniverseConfig(3, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	series, deltas := tass.SimulateSeriesDeltas(u, 4, 3, tass.SimConfig{Workers: 4})
	proto := u.Protocols()[0]
	s := series[proto]
	ds := deltas[proto]
	if len(ds) != s.Months()-1 {
		t.Fatalf("%d deltas for %d months", len(ds), s.Months())
	}

	// The delta chain reconstructs the series exactly.
	cur := s.At(0)
	for m, d := range ds {
		if d.Changed() == 0 {
			t.Fatalf("month %d: empty delta from a churning world", m)
		}
		next, err := tass.ApplyDelta(cur, d)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(next.Addrs, s.At(m+1).Addrs) {
			t.Fatalf("month %d: ApplyDelta diverges from the series", m+1)
		}
		cur = next
	}

	// Wire codec round trip.
	var buf bytes.Buffer
	if _, err := ds[0].WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := tass.ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(back.Born, ds[0].Born) || !slices.Equal(back.Died, ds[0].Died) {
		t.Fatal("delta codec round trip diverged")
	}

	// DeltaOf agrees with the native emission.
	if d := tass.DeltaOf(s.At(0), s.At(1)); !slices.Equal(d.Born, ds[0].Born) || !slices.Equal(d.Died, ds[0].Died) {
		t.Fatal("DeltaOf diverges from the native delta")
	}

	// Incremental selection == full selection on every month.
	cache := tass.NewCountCacheCap(64)
	sel, err := tass.NewIncrementalSelector(s.At(0), u.More, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	opts := tass.Options{Phi: 0.95}
	for m := 1; m < s.Months(); m++ {
		if err := sel.Apply(ds[m-1]); err != nil {
			t.Fatal(err)
		}
		inc, err := sel.Select(opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := tass.SelectCached(s.At(m), u.More, opts, 2, cache)
		if err != nil {
			t.Fatal(err)
		}
		if inc.K != full.K || inc.SeedHosts != full.SeedHosts || inc.Space != full.Space ||
			inc.HostCoverage != full.HostCoverage ||
			!slices.Equal(inc.Partition().Prefixes(), full.Partition().Prefixes()) {
			t.Fatalf("month %d: incremental selection diverged from full recompute", m)
		}
	}
}
