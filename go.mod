module github.com/tass-scan/tass

go 1.24
