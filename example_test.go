package tass_test

import (
	"fmt"
	"log"

	"github.com/tass-scan/tass"
)

// ExampleSelect demonstrates the paper's core algorithm on a hand-built
// universe: three prefixes with different densities, selected at φ=0.7.
func ExampleSelect() {
	universe, err := tass.NewPartition([]tass.Prefix{
		tass.MustParsePrefix("198.51.100.0/24"), // dense: 4 hosts / 256
		tass.MustParsePrefix("203.0.0.0/16"),    // sparse: 4 hosts / 65536
		tass.MustParsePrefix("192.0.2.0/24"),    // empty
	})
	if err != nil {
		log.Fatal(err)
	}
	seed := tass.NewSnapshot("ftp", 0, []tass.Addr{
		tass.MustParseAddr("198.51.100.1"), tass.MustParseAddr("198.51.100.2"),
		tass.MustParseAddr("198.51.100.3"), tass.MustParseAddr("198.51.100.4"),
		tass.MustParseAddr("203.0.7.7"), tass.MustParseAddr("203.0.8.8"),
		tass.MustParseAddr("203.0.9.9"), tass.MustParseAddr("203.0.10.10"),
	})
	sel, err := tass.Select(seed, universe, tass.Options{Phi: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range sel.Prefixes() {
		fmt.Println(p)
	}
	fmt.Printf("coverage %.2f with %d of %d addresses\n",
		sel.HostCoverage, sel.Space, universe.AddressCount())
	// Output:
	// 198.51.100.0/24
	// 203.0.0.0/16
	// coverage 1.00 with 65792 of 66048 addresses
}

// ExampleDeaggregate reproduces the paper's Figure 2: a /8 with an
// announced /12 inside decomposes into the minimal disjoint partition.
func ExampleDeaggregate() {
	pieces := tass.Deaggregate([]tass.Prefix{
		tass.MustParsePrefix("100.0.0.0/8"),
		tass.MustParsePrefix("100.16.0.0/12"),
	})
	for _, p := range pieces {
		fmt.Println(p)
	}
	// Output:
	// 100.0.0.0/12
	// 100.16.0.0/12
	// 100.32.0.0/11
	// 100.64.0.0/10
	// 100.128.0.0/9
}
